package query

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// TestPlanCacheInvalidationAcrossVersions pins the stale-sweep contract:
// plans cached for a store version that died are removed on the next
// miss (counted in StaleEvictions), not retained until capacity
// eviction, and post-mutation queries reflect the new data.
func TestPlanCacheInvalidationAcrossVersions(t *testing.T) {
	s := genstore.Chain(6, 1)
	q := New(s, WithRelation(genstore.RelE))
	queries := []string{"E", "join[1,3',3; 2=1'](E, E)", "join[1,1,3'; 3=1'](E, E)*"}
	for _, src := range queries {
		if _, err := q.Query(LangTriAL, src); err != nil {
			t.Fatal(err)
		}
	}
	if st := q.Stats(); st.Size != len(queries) || st.StaleEvictions != 0 {
		t.Fatalf("warm cache: %+v", st)
	}
	before, err := q.Query(LangTriAL, "E")
	if err != nil {
		t.Fatal(err)
	}

	s.Add(genstore.RelE, "z0", "a", "z1")

	after, err := q.Query(LangTriAL, "E")
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != before.Len()+1 {
		t.Errorf("post-mutation query returned %d triples, want %d", after.Len(), before.Len()+1)
	}
	st := q.Stats()
	if st.StaleEvictions != uint64(len(queries)) {
		t.Errorf("StaleEvictions = %d, want %d (all pre-mutation plans)", st.StaleEvictions, len(queries))
	}
	if st.Size != 1 {
		t.Errorf("cache Size = %d after sweep, want 1", st.Size)
	}
}

// TestBulkIngestDuringEvaluate runs ApplyBatch batches against a Querier
// serving concurrent queries (run with -race). Because batches advance
// the version once and queries evaluate against snapshots, every scan
// must observe a batch boundary: base size plus a multiple of the batch
// size.
func TestBulkIngestDuringEvaluate(t *testing.T) {
	const batchSize, nBatches = 5, 24
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	base := s.Size()
	q := New(s, WithRelation("E"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < nBatches; b++ {
			ops := make([]triplestore.Op, batchSize)
			for i := range ops {
				ops[i] = triplestore.Op{Rel: "E", S: fmt.Sprintf("s%d-%d", b, i), P: "p", O: "b"}
			}
			if _, err := s.ApplyBatch(ops); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := q.Query(LangTriAL, "E")
				if err != nil {
					t.Error(err)
					return
				}
				if extra := res.Len() - base; extra < 0 || extra%batchSize != 0 {
					t.Errorf("scan saw %d triples: not on a batch boundary (base %d, batch %d)",
						res.Len(), base, batchSize)
					return
				}
			}
		}()
	}
	wg.Wait()

	res, err := q.Query(LangTriAL, "E")
	if err != nil {
		t.Fatal(err)
	}
	if want := base + batchSize*nBatches; res.Len() != want {
		t.Errorf("final scan = %d triples, want %d", res.Len(), want)
	}
}

// TestDifferentialOnMutatedStore pins the query façade to the reference
// Evaluator after interleaved single writes, batches and deletions.
func TestDifferentialOnMutatedStore(t *testing.T) {
	s := genstore.Chain(8, 2)
	q := New(s, WithRelation(genstore.RelE))
	srcs := []string{"E", "join[1,3',3; 2=1'](E, E)", "join[1,1,3'; 3=1'](E, E)*"}

	check := func(label string) {
		t.Helper()
		for _, src := range srcs {
			x, err := trial.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trial.NewEvaluator(s).Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Query(LangTriAL, src)
			if err != nil {
				t.Fatal(err)
			}
			if gw, gg := s.FormatRelation(want), s.FormatRelation(got); gw != gg {
				t.Errorf("%s: %q diverges:\nevaluator:\n%squerier:\n%s", label, src, gw, gg)
			}
		}
	}

	check("initial")
	s.Add(genstore.RelE, "x1", "a", "x2")
	check("after add")
	if _, err := s.ApplyBatch([]triplestore.Op{
		{Rel: genstore.RelE, S: "x2", P: "a", O: "x3"},
		{Rel: genstore.RelE, S: "x3", P: "b", O: "x1"},
		{Delete: true, Rel: genstore.RelE, S: "x1", P: "a", O: "x2"},
	}); err != nil {
		t.Fatal(err)
	}
	check("after batch")
	s.Remove(genstore.RelE, "x3", "b", "x1")
	check("after remove")
}
