package query

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/triplestore"
)

// TestQuerierStoragePinning: a Querier over a disk engine must answer
// identically to one over a plain store built from the same ops, keep
// exactly one generation pinned as the store advances (old pins are
// released when it re-snapshots), and release its last pin on Close.
func TestQuerierStoragePinning(t *testing.T) {
	eng, err := storage.Open(t.TempDir(),
		storage.WithSyncPolicy(storage.SyncNone), storage.WithFlushBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mem := triplestore.NewStore()
	q := NewStorage(eng)
	qMem := New(mem)

	for round := 0; round < 8; round++ {
		var ops []triplestore.Op
		for i := 0; i < 40; i++ {
			ops = append(ops, triplestore.Op{
				Rel: "E",
				S:   fmt.Sprintf("n%d", (round*17+i)%30),
				P:   "p",
				O:   fmt.Sprintf("n%d", (round*11+i*3)%30),
			})
		}
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		got, err := q.Query(LangRPQ, "p+")
		if err != nil {
			t.Fatal(err)
		}
		want, err := qMem.Query(LangRPQ, "p+")
		if err != nil {
			t.Fatal(err)
		}
		gp, _ := q.Pairs(got)
		wp, _ := qMem.Pairs(want)
		if fmt.Sprint(gp) != fmt.Sprint(wp) {
			t.Fatalf("round %d: disk answered %d pairs, mem %d", round, len(gp), len(wp))
		}
		// One live generation plus at most the querier's single pin: old
		// pins must not accumulate as the version advances.
		if n := eng.Stats().PinnedGenerations; n > 2 {
			t.Fatalf("round %d: %d generations pinned", round, n)
		}
	}

	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := eng.Stats().PinnedGenerations; n > 1 {
		t.Fatalf("%d generations still pinned after Close", n)
	}
}

// TestQuerierColdStorage runs the query tier over a disk engine opened
// with a zero read budget: every index probe the prepared plans make is
// served from segment blocks. Answers must match an in-memory querier
// over the same data, writes must keep working (force-materializing the
// touched relation), and the querier must release its pin before the
// engine closes — the engine unmaps its segments at Close, so a pin
// outliving it would read unmapped memory.
func TestQuerierColdStorage(t *testing.T) {
	mem := triplestore.NewStore()
	var ops []triplestore.Op
	for i := 0; i < 300; i++ {
		ops = append(ops, triplestore.Op{
			Rel: "E",
			S:   fmt.Sprintf("n%d", i%40),
			P:   fmt.Sprintf("p%d", i%3),
			O:   fmt.Sprintf("n%d", (i*7+3)%40),
		})
	}
	if _, err := mem.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	eng, err := storage.CreateFrom(t.TempDir(), mem,
		storage.WithSyncPolicy(storage.SyncNone), storage.WithReadBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := NewStorage(eng)
	qMem := New(mem)

	for _, src := range []string{"p0+", "p1/p2", "p0|p1"} {
		got, err := q.Query(LangRPQ, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want, err := qMem.Query(LangRPQ, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		gp, _ := q.Pairs(got)
		wp, _ := qMem.Pairs(want)
		if fmt.Sprint(gp) != fmt.Sprint(wp) {
			t.Fatalf("%s: cold answered %d pairs, mem %d", src, len(gp), len(wp))
		}
	}
	res := eng.Stats().Residency
	if res.ColdProbes == 0 && res.ColdDecodes == 0 {
		t.Fatalf("residency = %+v: queries never touched the segment-read path", res)
	}
	if res.Promotions != 0 {
		t.Fatalf("residency = %+v: budget 0 must not promote on reads", res)
	}

	// A write through the engine force-materializes E; queries keep
	// answering and see the new edge on a fresh snapshot.
	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "n0", P: "p9", O: "n1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ApplyBatch([]triplestore.Op{{Rel: "E", S: "n0", P: "p9", O: "n1"}}); err != nil {
		t.Fatal(err)
	}
	got, err := q.Query(LangRPQ, "p9")
	if err != nil {
		t.Fatal(err)
	}
	if gp, _ := q.Pairs(got); len(gp) != 1 {
		t.Fatalf("p9 after write: %v pairs, want 1", gp)
	}
	if res := eng.Stats().Residency; res.Promotions != 1 {
		t.Fatalf("residency = %+v: want the written relation force-promoted", res)
	}

	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if n := eng.Stats().PinnedGenerations; n > 1 {
		t.Fatalf("%d generations still pinned after querier Close", n)
	}
}

// TestQuerierCloseIsNoOpWithoutBackend pins that Close on a plain
// Querier is safe and idempotent.
func TestQuerierCloseIsNoOpWithoutBackend(t *testing.T) {
	q := New(triplestore.NewStore())
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}
