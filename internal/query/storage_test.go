package query

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/triplestore"
)

// TestQuerierStoragePinning: a Querier over a disk engine must answer
// identically to one over a plain store built from the same ops, keep
// exactly one generation pinned as the store advances (old pins are
// released when it re-snapshots), and release its last pin on Close.
func TestQuerierStoragePinning(t *testing.T) {
	eng, err := storage.Open(t.TempDir(),
		storage.WithSyncPolicy(storage.SyncNone), storage.WithFlushBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mem := triplestore.NewStore()
	q := NewStorage(eng)
	qMem := New(mem)

	for round := 0; round < 8; round++ {
		var ops []triplestore.Op
		for i := 0; i < 40; i++ {
			ops = append(ops, triplestore.Op{
				Rel: "E",
				S:   fmt.Sprintf("n%d", (round*17+i)%30),
				P:   "p",
				O:   fmt.Sprintf("n%d", (round*11+i*3)%30),
			})
		}
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		got, err := q.Query(LangRPQ, "p+")
		if err != nil {
			t.Fatal(err)
		}
		want, err := qMem.Query(LangRPQ, "p+")
		if err != nil {
			t.Fatal(err)
		}
		gp, _ := q.Pairs(got)
		wp, _ := qMem.Pairs(want)
		if fmt.Sprint(gp) != fmt.Sprint(wp) {
			t.Fatalf("round %d: disk answered %d pairs, mem %d", round, len(gp), len(wp))
		}
		// One live generation plus at most the querier's single pin: old
		// pins must not accumulate as the version advances.
		if n := eng.Stats().PinnedGenerations; n > 2 {
			t.Fatalf("round %d: %d generations pinned", round, n)
		}
	}

	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := eng.Stats().PinnedGenerations; n > 1 {
		t.Fatalf("%d generations still pinned after Close", n)
	}
}

// TestQuerierCloseIsNoOpWithoutBackend pins that Close on a plain
// Querier is safe and idempotent.
func TestQuerierCloseIsNoOpWithoutBackend(t *testing.T) {
	q := New(triplestore.NewStore())
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}
