package query

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
)

func TestParseLang(t *testing.T) {
	for in, want := range map[string]Lang{
		"":        LangTriAL,
		"trial":   LangTriAL,
		"TriAL*":  LangTriAL,
		"nsparql": LangNSPARQL,
		"rpq":     LangRPQ,
		"2rpq":    LangRPQ,
		"nre":     LangNRE,
		"gxpath":  LangGXPath,
		"GXPath":  LangGXPath,
	} {
		got, err := ParseLang(in)
		if err != nil {
			t.Errorf("ParseLang(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseLang(%q) = %q, want %q", in, got, want)
		}
	}
	for _, in := range []string{"sql", "datalog", "xpath"} {
		if _, err := ParseLang(in); err == nil {
			t.Errorf("ParseLang(%q): want error", in)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	q := New(fixtures.Transport())
	bad := map[Lang]string{
		LangTriAL:   "join[(",
		LangNSPARQL: "nonsense::",
		LangRPQ:     "(a",
		LangNRE:     "(a",
		LangGXPath:  "~a",
	}
	for lang, src := range bad {
		if _, err := q.Compile(lang, src); err == nil {
			t.Errorf("Compile(%s, %q): want error", lang, src)
		}
		if _, err := q.Query(lang, src); err == nil {
			t.Errorf("Query(%s, %q): want error", lang, src)
		}
	}
	if _, err := q.Compile(Lang("sql"), "SELECT"); err == nil {
		t.Error("Compile with unknown language: want error")
	}
}

func TestQueryCacheHits(t *testing.T) {
	q := New(genstore.Chain(8, 2))
	src := "rstar[1,2,3'; 3=1'](E)"
	first, err := q.Query(LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := q.Query(LangTriAL, src)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Equal(first) {
			t.Fatal("cached plan computed a different relation")
		}
	}
	st := q.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 1 miss and 4 hits", st)
	}
	if st.Size != 1 {
		t.Errorf("cache size = %d, want 1", st.Size)
	}
	if st.Capacity != DefaultCacheSize {
		t.Errorf("capacity = %d, want %d", st.Capacity, DefaultCacheSize)
	}

	// The same source in a different language is a different plan.
	if _, err := q.Query(LangRPQ, "p0"); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Misses != 2 || st.Size != 2 {
		t.Errorf("stats after second language = %+v, want 2 misses, size 2", st)
	}
}

func TestQueryCacheEviction(t *testing.T) {
	q := New(genstore.Chain(6, 1), WithCacheSize(2))
	for _, src := range []string{"E", "union(E, E)", "diff(E, E)"} {
		if _, err := q.Query(LangTriAL, src); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 {
		t.Errorf("size = %d, want 2", st.Size)
	}
	// The oldest entry ("E") was evicted: querying it again misses.
	if _, err := q.Query(LangTriAL, "E"); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (evicted entry recompiled)", st.Misses)
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	q := New(genstore.Chain(4, 1), WithCacheSize(0))
	for i := 0; i < 3; i++ {
		if _, err := q.Query(LangTriAL, "E"); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Size != 0 {
		t.Errorf("stats with disabled cache = %+v, want all misses", st)
	}
}

func TestQueryCacheInvalidatedByStoreVersion(t *testing.T) {
	s := genstore.Chain(5, 1)
	q := New(s)
	r1, err := q.Query(LangTriAL, "rstar[1,2,3'; 3=1'](E)")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the store changes its version: the next query must
	// recompile (miss), not reuse the stale plan.
	s.Add(genstore.RelE, "extra1", "lab", "extra2")
	r2, err := q.Query(LangTriAL, "rstar[1,2,3'; 3=1'](E)")
	if err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses and no hits across a store mutation", st)
	}
	if r2.Len() <= r1.Len() {
		t.Errorf("result did not grow after adding a triple: %d then %d", r1.Len(), r2.Len())
	}
}

func TestQueryUniverseFreshAfterMutation(t *testing.T) {
	s := genstore.Chain(3, 1)
	q := New(s)
	before, err := q.Query(LangTriAL, "U")
	if err != nil {
		t.Fatal(err)
	}
	// A mutation that introduces new objects must be visible to
	// universe-based queries on the next call: the engine's cached
	// universal relation is version-keyed like the plan cache.
	s.Add(genstore.RelE, "brandnew1", "brandnew2", "brandnew3")
	after, err := q.Query(LangTriAL, "U")
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() <= before.Len() {
		t.Errorf("universe stale after mutation: %d then %d triples", before.Len(), after.Len())
	}
	want, err := trial.NewEvaluator(s).Eval(trial.U())
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(want) {
		t.Errorf("universe after mutation = %d triples, evaluator says %d", after.Len(), want.Len())
	}
}

func TestCompileErrorClassification(t *testing.T) {
	q := New(genstore.Chain(3, 1))
	_, err := q.Query(LangRPQ, "(a")
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Errorf("parse failure not a CompileError: %v", err)
	}
	// Unknown relations fail at planning, not compilation — the same
	// split the Evaluator has (and the server's 400/422 mapping).
	_, err = q.Query(LangTriAL, "NoSuchRel")
	if err == nil || errors.As(err, &ce) {
		t.Errorf("planning failure misclassified as CompileError: %v", err)
	}
}

func TestQueryConcurrent(t *testing.T) {
	q := New(genstore.Grid(5, 5))
	want, err := q.Query(LangTriAL, "rstar[1,2,3'; 3=1'](E)")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := q.Query(LangTriAL, "rstar[1,2,3'; 3=1'](E)")
			if err != nil {
				t.Error(err)
				return
			}
			if !got.Equal(want) {
				t.Error("concurrent query mismatch")
			}
		}()
	}
	wg.Wait()
}

func TestExplain(t *testing.T) {
	q := New(genstore.Chain(4, 1))
	plan, err := q.Explain(LangRPQ, "p0*")
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Error("empty plan")
	}
	// Explain shares the plan cache with Query.
	if _, err := q.Query(LangRPQ, "p0*"); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want Explain to prime the cache for Query", st)
	}
}

func TestPairs(t *testing.T) {
	q := New(genstore.Chain(3, 1))
	r, err := q.Query(LangRPQ, "p0")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := q.Pairs(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != r.Len() {
		t.Errorf("got %d pairs from %d triples", len(pairs), r.Len())
	}
	// The raw edge relation is not canonical.
	raw, err := q.Query(LangTriAL, "E")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Pairs(raw); err == nil {
		t.Error("Pairs accepted a non-canonical relation")
	}
}

func TestOptions(t *testing.T) {
	s := genstore.Chain(4, 1)
	q := New(s, WithRelation(genstore.RelE), WithEngineOptions(engine.WithWorkers(1)))
	if q.Relation() != genstore.RelE {
		t.Errorf("Relation = %q", q.Relation())
	}
	if q.Store() != s {
		t.Error("Store not wired to the live store")
	}
	// The engine evaluates against an immutable snapshot of the store's
	// current version, not the live store itself.
	eng := q.Engine()
	if eng == nil || !eng.Store().IsSnapshot() || eng.Store().Version() != s.Version() {
		t.Error("Engine not bound to a snapshot of the current version")
	}
	if q.Engine() != eng {
		t.Error("Engine rebuilt although the store version did not change")
	}
	s.Add(genstore.RelE, "x", "a", "y")
	if q.Engine() == eng {
		t.Error("Engine not refreshed after a store mutation")
	}
	// Unknown relation surfaces the engine's error.
	q2 := New(s, WithRelation("missing"))
	if _, err := q2.Query(LangRPQ, "a"); err == nil {
		t.Error("query against a missing relation: want error")
	}
}

func TestLangsCoverCompile(t *testing.T) {
	q := New(genstore.Chain(3, 1))
	srcs := map[Lang]string{
		LangTriAL:   "E",
		LangNSPARQL: "next",
		LangRPQ:     "a",
		LangNRE:     "a",
		LangGXPath:  "a",
	}
	for _, lang := range Langs() {
		src, ok := srcs[lang]
		if !ok {
			t.Fatalf("Langs() returned %q with no test source", lang)
		}
		x, err := q.Compile(lang, src)
		if err != nil {
			t.Errorf("Compile(%s, %q): %v", lang, src, err)
			continue
		}
		if _, ok := x.(trial.Expr); !ok {
			t.Errorf("Compile(%s) returned %T", lang, x)
		}
	}
}
