// Package query is the unified query layer: one entry point that takes a
// query in any supported frontend language, compiles it through
// internal/translate into a TriAL* expression, and executes it on the
// indexed, parallel engine of internal/engine.
//
// §6.2 of the TriAL paper (Theorems 7–8, Corollaries 2 and 4) shows that
// GXPath, nested regular expressions, regular path queries and nSPARQL
// all embed into TriAL*. This package turns those inclusions into one
// canonical fast path: every language reaches the same physical planner,
// the same parallel operators and the same semi-naive recursion, instead
// of each frontend carrying its own interpreter. Differential tests pin
// the results to the reference trial.Evaluator and to each language's
// native evaluator.
//
// Every expression passes through the logical optimizer
// (internal/optimizer) inside engine.Prepare before it is planned and
// cached; the Querier aggregates each plan's rewrite trace into
// per-rule hit counters (RewriteStats) for observability.
//
// Compiled physical plans are cached in an LRU keyed by (language,
// source text, relation, store version, optimizer version), so a
// repeated query skips parsing, translation, optimization and planning
// entirely — the cache is what makes the façade cheap enough to sit on
// the server's hot path.
//
// The Querier is safe to use while the store is being mutated through
// the store's own methods: each query runs against an immutable
// Snapshot of the store's current version (one engine per version,
// refreshed lazily), and plans cached for versions that died are swept
// out of the LRU on the next miss — or as soon as Store() observes the
// advanced version — counted in CacheStats.StaleEvictions.
//
// NewSharded routes queries through the partition-parallel engine over
// a triplestore.ShardedStore, snapshotting union and shard partitions
// together per store version; a single-shard store transparently
// degrades to the flat engine. Everything else — languages, plan cache,
// sweeps — behaves identically in both modes.
package query
