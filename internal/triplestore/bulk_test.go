package triplestore_test

import (
	"fmt"
	"strings"
	"testing"

	ts "repro/internal/triplestore"
)

// TestApplyNDJSONStreamsBounded asserts the satellite contract: however
// large the NDJSON stream, ApplyNDJSON buffers at most one chunk of
// parsed ops between ApplyBatch calls.
func TestApplyNDJSONStreamsBounded(t *testing.T) {
	const lines = 3*ts.NDJSONChunkOps + 37
	var b strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, `{"s":"s%d","p":"knows","o":"o%d"}`+"\n", i, i)
	}
	maxChunk, chunks := 0, 0
	restore := ts.SetNDJSONChunkHook(func(n int) {
		chunks++
		if n > maxChunk {
			maxChunk = n
		}
	})
	defer restore()

	s := ts.NewStore()
	res, err := s.ApplyNDJSON(strings.NewReader(b.String()), "E")
	if err != nil {
		t.Fatalf("ApplyNDJSON: %v", err)
	}
	if res.Added != lines {
		t.Fatalf("Added = %d, want %d", res.Added, lines)
	}
	if maxChunk > ts.NDJSONChunkOps {
		t.Fatalf("chunk of %d ops exceeds the %d bound", maxChunk, ts.NDJSONChunkOps)
	}
	if want := (lines + ts.NDJSONChunkOps - 1) / ts.NDJSONChunkOps; chunks != want {
		t.Fatalf("applied %d chunks, want %d", chunks, want)
	}
	if s.Relation("E").Len() != lines {
		t.Fatalf("relation has %d triples, want %d", s.Relation("E").Len(), lines)
	}
}

// TestApplyNDJSONPartialOnParseError pins the documented chunked-atomicity
// contract: a parse error mid-stream leaves prior chunks applied and
// reports them in the result.
func TestApplyNDJSONPartialOnParseError(t *testing.T) {
	var b strings.Builder
	for i := 0; i < ts.NDJSONChunkOps+5; i++ {
		fmt.Fprintf(&b, `{"s":"s%d","p":"p","o":"o"}`+"\n", i)
	}
	b.WriteString("not json\n")
	s := ts.NewStore()
	res, err := s.ApplyNDJSON(strings.NewReader(b.String()), "E")
	if err == nil {
		t.Fatal("want parse error")
	}
	if res.Added != ts.NDJSONChunkOps+5 {
		t.Fatalf("Added = %d, want %d (chunks before the error)", res.Added, ts.NDJSONChunkOps+5)
	}
	if got := s.Relation("E").Len(); got != ts.NDJSONChunkOps+5 {
		t.Fatalf("relation has %d triples, want %d", got, ts.NDJSONChunkOps+5)
	}
}

// TestOpReaderChunks exercises the incremental parser directly: chunk
// sizing, buffer reuse, final short chunk with io.EOF, sticky errors.
func TestOpReaderChunks(t *testing.T) {
	const n = 10
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"s":"a%d","p":"p","o":"b%d"}`+"\n", i, i)
	}
	or := ts.NewOpReader(strings.NewReader(b.String()), "R")
	var got []ts.Op
	for {
		chunk, err := or.Next(4)
		got = append(got, chunk...)
		if err != nil {
			if err.Error() != "EOF" {
				t.Fatalf("Next: %v", err)
			}
			break
		}
		if len(chunk) != 4 {
			t.Fatalf("full chunk has %d ops, want 4", len(chunk))
		}
	}
	if len(got) != n {
		t.Fatalf("parsed %d ops, want %d", len(got), n)
	}
	for i, op := range got {
		want := ts.Op{Rel: "R", S: fmt.Sprintf("a%d", i), P: "p", O: fmt.Sprintf("b%d", i)}
		if op != want {
			t.Fatalf("op %d = %+v, want %+v", i, op, want)
		}
	}
	if _, err := or.Next(4); err == nil {
		t.Fatal("Next after EOF: want sticky error")
	}
}

// TestApplyBatchFuncEffects asserts the effect callback fires exactly for
// state-changing ops, with the resolved triples, in batch order.
func TestApplyBatchFuncEffects(t *testing.T) {
	s := ts.NewStore()
	ops := []ts.Op{
		{Rel: "E", S: "a", P: "p", O: "b"},
		{Rel: "E", S: "a", P: "p", O: "b"}, // duplicate: no effect
		{Rel: "E", S: "b", P: "p", O: "c"},
		{Delete: true, Rel: "E", S: "x", P: "y", O: "z"}, // absent: no effect
		{Delete: true, Rel: "E", S: "a", P: "p", O: "b"},
	}
	type eff struct {
		del     bool
		s, p, o string
	}
	var got []eff
	res, err := s.ApplyBatchFunc(ops, func(op ts.Op, tr ts.Triple) {
		got = append(got, eff{op.Delete, s.Name(tr[0]), s.Name(tr[1]), s.Name(tr[2])})
	})
	if err != nil {
		t.Fatalf("ApplyBatchFunc: %v", err)
	}
	if res.Added != 2 || res.Removed != 1 {
		t.Fatalf("result = %+v, want Added 2 Removed 1", res)
	}
	want := []eff{
		{false, "a", "p", "b"},
		{false, "b", "p", "c"},
		{true, "a", "p", "b"},
	}
	if len(got) != len(want) {
		t.Fatalf("effects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("effect %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestBulkLoaderRoundTrip builds a store the normal way, exports its runs,
// reloads them through the BulkLoader, and asserts full equivalence —
// dictionary, values, relations, and index access paths.
func TestBulkLoaderRoundTrip(t *testing.T) {
	src := ts.NewStore()
	for i := 0; i < 200; i++ {
		src.Add("E", fmt.Sprintf("n%d", i%40), fmt.Sprintf("p%d", i%7), fmt.Sprintf("n%d", (i*13)%40))
	}
	src.Add("F", "n1", "p0", "n2")
	src.SetValue("n3", ts.Value{{Str: "hello"}, {Null: true}})

	b := ts.NewBulkLoader()
	names := make([]string, src.NumObjects())
	for i := range names {
		names[i] = src.Name(ts.ID(i))
	}
	if err := b.AddNames(names); err != nil {
		t.Fatalf("AddNames: %v", err)
	}
	for i := 0; i < src.NumObjects(); i++ {
		if v := src.Value(ts.ID(i)); v != nil {
			if err := b.SetValueID(ts.ID(i), v); err != nil {
				t.Fatalf("SetValueID: %v", err)
			}
		}
	}
	for _, rel := range src.RelationNames() {
		r := src.Relation(rel)
		err := b.SetRelationRuns(rel,
			r.Index(ts.SPO).Triples(), r.Index(ts.POS).Triples(), r.Index(ts.OSP).Triples())
		if err != nil {
			t.Fatalf("SetRelationRuns(%s): %v", rel, err)
		}
	}
	got := b.Store()

	if got.NumObjects() != src.NumObjects() {
		t.Fatalf("NumObjects = %d, want %d", got.NumObjects(), src.NumObjects())
	}
	for i := 0; i < src.NumObjects(); i++ {
		id := ts.ID(i)
		if got.Name(id) != src.Name(id) {
			t.Fatalf("Name(%d) = %q, want %q", i, got.Name(id), src.Name(id))
		}
		if !got.Value(id).Equal(src.Value(id)) {
			t.Fatalf("Value(%d) differs", i)
		}
	}
	for _, rel := range src.RelationNames() {
		sr, gr := src.Relation(rel), got.Relation(rel)
		if !sr.Equal(gr) {
			t.Fatalf("relation %s differs", rel)
		}
		if src.FormatRelation(sr) != got.FormatRelation(gr) {
			t.Fatalf("relation %s renders differently", rel)
		}
		for _, perm := range []ts.Perm{ts.SPO, ts.POS, ts.OSP} {
			for _, id := range sr.Index(perm).Leads() {
				a, c := sr.Index(perm).Match(id), gr.Index(perm).Match(id)
				if len(a) != len(c) {
					t.Fatalf("relation %s %v Match(%d): %d vs %d", rel, perm, id, len(a), len(c))
				}
			}
		}
	}
	// The loaded store is mutable and participates in the normal contract.
	if _, err := got.ApplyBatch([]ts.Op{{Rel: "E", S: "new", P: "p0", O: "n1"}}); err != nil {
		t.Fatalf("ApplyBatch on loaded store: %v", err)
	}
}

// TestBulkLoaderRejectsBadRuns asserts the loader's validation: duplicate
// names, unsorted runs, disagreeing lengths, dangling IDs.
func TestBulkLoaderRejectsBadRuns(t *testing.T) {
	b := ts.NewBulkLoader()
	if err := b.AddNames([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	b = ts.NewBulkLoader()
	if err := b.AddNames([]string{"a", "b", "c"}); err != nil {
		t.Fatalf("AddNames: %v", err)
	}
	t0, t1 := ts.Triple{0, 1, 2}, ts.Triple{1, 1, 2}
	if err := b.SetRelationRuns("E", []ts.Triple{t1, t0}, nil, nil); err == nil {
		t.Fatal("unsorted/short runs accepted")
	}
	if err := b.SetRelationRuns("E",
		[]ts.Triple{t0, t1},
		[]ts.Triple{{1, 2, 0}, {1, 2, 1}},
		[]ts.Triple{{2, 0, 1}, {2, 1, 1}}); err != nil {
		t.Fatalf("valid runs rejected: %v", err)
	}
	if err := b.SetRelationRuns("E", nil, nil, nil); err == nil {
		t.Fatal("double-install accepted")
	}
	bad := ts.Triple{0, 1, 9}
	if err := b.SetRelationRuns("G",
		[]ts.Triple{bad},
		[]ts.Triple{{1, 9, 0}},
		[]ts.Triple{{9, 0, 1}}); err == nil {
		t.Fatal("dangling ID accepted")
	}
	if err := b.SetValueID(7, ts.Value{{Str: "x"}}); err == nil {
		t.Fatal("value for unknown ID accepted")
	}
}
