package triplestore

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadTriples loads triples from a simple line-oriented text format into
// the named relation of the store. Each non-empty, non-comment line holds
// three fields separated by tabs; if the line contains no tab it is split
// on runs of spaces instead, with double quotes grouping fields that
// contain spaces. Lines starting with '#' are comments.
//
// Example:
//
//	Edinburgh   "Train Op 1"   London
//	"Train Op 1"  part_of  EastCoast
func ReadTriples(s *Store, r io.Reader, rel string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields, err := splitFields(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if len(fields) != 3 {
			return fmt.Errorf("line %d: want 3 fields, got %d", line, len(fields))
		}
		s.Add(rel, fields[0], fields[1], fields[2])
	}
	return sc.Err()
}

func splitFields(text string) ([]string, error) {
	if strings.Contains(text, "\t") {
		parts := strings.Split(text, "\t")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			// Quotes are optional in the tab-separated form; strip a
			// fully-quoting pair so both forms name the same object.
			if len(p) >= 2 && p[0] == '"' && p[len(p)-1] == '"' {
				p = p[1 : len(p)-1]
			}
			out = append(out, p)
		}
		return out, nil
	}
	var fields []string
	i := 0
	for i < len(text) {
		switch {
		case text[i] == ' ':
			i++
		case text[i] == '"':
			j := strings.IndexByte(text[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("unterminated quote")
			}
			fields = append(fields, text[i+1:i+1+j])
			i += j + 2
		default:
			j := strings.IndexByte(text[i:], ' ')
			if j < 0 {
				fields = append(fields, text[i:])
				i = len(text)
			} else {
				fields = append(fields, text[i:i+j])
				i += j
			}
		}
	}
	return fields, nil
}

// WriteTriples writes the named relation in the tab-separated text format
// accepted by ReadTriples, sorted lexicographically by interned names.
func WriteTriples(s *Store, w io.Writer, rel string) error {
	r := s.Relation(rel)
	if r == nil {
		return fmt.Errorf("no relation %q", rel)
	}
	for _, t := range r.Triples() {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n", s.Name(t[0]), s.Name(t[1]), s.Name(t[2])); err != nil {
			return err
		}
	}
	return nil
}
