package triplestore

import "fmt"

// BulkLoader assembles a Store from pre-validated components produced by
// a trusted loader — the disk storage engine's segment reader above all.
// It bypasses per-op interning and duplicate checks and installs relation
// access paths (the sorted view and the three permutation indexes)
// directly from the segment's already-sorted runs, which is what makes
// cold-start recovery from a checkpoint segment an order of magnitude
// faster than re-ingesting the same triples through ApplyBatch.
//
// A BulkLoader is strictly single-threaded: it owns a private Store that
// must not be shared until Store() hands it over, after which the loader
// must not be used again.
type BulkLoader struct {
	s    *Store
	done bool
}

// NewBulkLoader returns a loader over a fresh empty store.
func NewBulkLoader() *BulkLoader {
	return &BulkLoader{s: NewStore()}
}

// AddNames appends names to the dictionary in order, assigning them the
// next free IDs. Loading a segment's dictionary delta is an append at
// dict position dictBase; AddNames verifies the names really are new so a
// corrupted or misordered delta fails loudly instead of aliasing IDs.
func (b *BulkLoader) AddNames(names []string) error {
	b.ensureOpen()
	if err := b.s.dict.appendNew(names); err != nil {
		return fmt.Errorf("triplestore: bulk load: %w", err)
	}
	if n := b.s.dict.Len(); n > len(b.s.values) {
		b.s.values = append(b.s.values, make([]Value, n-len(b.s.values))...)
	}
	return nil
}

// NumNames returns the number of names loaded so far — the next ID to be
// assigned. Loaders use it to check a segment's dictBase lines up.
func (b *BulkLoader) NumNames() int { return b.s.dict.Len() }

// SetValueID assigns ρ(id) = v for an already-loaded object ID.
func (b *BulkLoader) SetValueID(id ID, v Value) error {
	b.ensureOpen()
	if int(id) >= len(b.s.values) {
		return fmt.Errorf("triplestore: bulk load: value for unknown ID %d (have %d objects)", id, len(b.s.values))
	}
	b.s.values[id] = v
	return nil
}

// SetRelationRuns installs the named relation from its three permutation
// runs, each sorted in its permutation's key order and all containing the
// same triples. The sorted view and the SPO/POS/OSP indexes are installed
// directly (no re-sort, no overlay), so the relation's access paths are
// warm from the first probe. Run sortedness and length agreement are
// verified; triple-set agreement across the runs is trusted to the
// caller's checksums.
func (b *BulkLoader) SetRelationRuns(name string, spo, pos, osp []Triple) error {
	b.ensureOpen()
	if name == "" {
		return fmt.Errorf("triplestore: bulk load: empty relation name")
	}
	if len(pos) != len(spo) || len(osp) != len(spo) {
		return fmt.Errorf("triplestore: bulk load: relation %q: run lengths disagree (%d/%d/%d)",
			name, len(spo), len(pos), len(osp))
	}
	runs := [numPerms][]Triple{SPO: spo, POS: pos, OSP: osp}
	for perm, run := range runs {
		for i := 1; i < len(run); i++ {
			if !Perm(perm).key(run[i-1]).Less(Perm(perm).key(run[i])) {
				return fmt.Errorf("triplestore: bulk load: relation %q: %v run not strictly sorted at %d",
					name, Perm(perm), i)
			}
		}
	}
	// No membership map is built here: the strict sortedness just
	// verified proves the runs duplicate-free, and the relation stays
	// run-backed (set == nil, the sorted view authoritative) until its
	// first mutation materializes the map. Skipping the 1-map-insert-
	// per-triple build is most of what makes checkpoint recovery fast.
	r := &Relation{
		sorted: spo, // SPO key order is Triple.Less order, i.e. the sorted view
		idx: [numPerms]*Index{
			SPO: {perm: SPO, triples: spo},
			POS: {perm: POS, triples: pos},
			OSP: {perm: OSP, triples: osp},
		},
	}
	return b.installRelation(name, r)
}

// SetRelationSource installs the named relation served directly from a
// storage-backed RunSource: no triples are decoded at load time, reads
// route through the source until its residency policy (or the first
// mutation) materializes the relation. The disk engine uses this to open
// a store whose cold relations never enter memory. ID validity of the
// source's triples is trusted to the storage checksums the source
// verified at open, mirroring the cross-run trust of SetRelationRuns.
func (b *BulkLoader) SetRelationSource(name string, src RunSource) error {
	b.ensureOpen()
	if name == "" {
		return fmt.Errorf("triplestore: bulk load: empty relation name")
	}
	if src == nil {
		return fmt.Errorf("triplestore: bulk load: relation %q: nil source", name)
	}
	return b.installRelation(name, &Relation{src: src})
}

// SetRelationSet installs the named relation from a plain triple set,
// leaving access paths to build lazily. The multi-segment recovery path
// (where adds and tombstones from several segments must be merged) uses
// this; single-checkpoint recovery prefers SetRelationRuns.
func (b *BulkLoader) SetRelationSet(name string, set map[Triple]struct{}) error {
	b.ensureOpen()
	if name == "" {
		return fmt.Errorf("triplestore: bulk load: empty relation name")
	}
	return b.installRelation(name, &Relation{set: set})
}

func (b *BulkLoader) installRelation(name string, r *Relation) error {
	if _, ok := b.s.rels[name]; ok {
		return fmt.Errorf("triplestore: bulk load: relation %q loaded twice", name)
	}
	if r.set == nil && r.src != nil {
		// Source-backed: nothing is decoded at install time, so there is
		// no content to range-check here; the source's open-time checksum
		// verification covers it.
		b.s.rels[name] = r
		b.s.relNames = append(b.s.relNames, name)
		return nil
	}
	max := ID(len(b.s.values))
	check := func(t Triple) error {
		if t[0] >= max || t[1] >= max || t[2] >= max {
			return fmt.Errorf("triplestore: bulk load: relation %q: triple %v references unknown ID (have %d objects)",
				name, t, max)
		}
		return nil
	}
	if r.set == nil { // run-backed (SetRelationRuns): the sorted view is the content
		for _, t := range r.sorted {
			if err := check(t); err != nil {
				return err
			}
		}
	} else {
		for t := range r.set {
			if err := check(t); err != nil {
				return err
			}
		}
	}
	b.s.rels[name] = r
	b.s.relNames = append(b.s.relNames, name)
	return nil
}

// Store finalizes the load and returns the assembled store, mutable and
// at version 1 (so caches keyed on "version changed since zero" see the
// loaded state as a distinct generation). The loader is spent afterwards.
func (b *BulkLoader) Store() *Store {
	b.ensureOpen()
	b.done = true
	b.s.bumpVersion()
	return b.s
}

func (b *BulkLoader) ensureOpen() {
	if b.done {
		panic("triplestore: BulkLoader used after Store()")
	}
}
