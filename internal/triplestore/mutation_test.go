package triplestore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestInternAdvancesVersion pins the version contract: every state
// change — including interning a new object, which grows |O| and hence
// the statistics — advances the version; pure reads do not.
func TestInternAdvancesVersion(t *testing.T) {
	s := NewStore()
	v := s.Version()
	if s.Intern("a"); s.Version() == v {
		t.Error("Intern of a new object did not advance the version")
	}
	v = s.Version()
	if s.Intern("a"); s.Version() != v {
		t.Error("Intern of an existing object advanced the version")
	}
	if s.Lookup("a"); s.Version() != v {
		t.Error("Lookup advanced the version")
	}
	if s.SetValue("b", V("1")); s.Version() == v {
		t.Error("SetValue did not advance the version")
	}
	v = s.Version()
	if s.EnsureRelation("R"); s.Version() == v {
		t.Error("EnsureRelation of a new relation did not advance the version")
	}
	v = s.Version()
	if s.EnsureRelation("R"); s.Version() != v {
		t.Error("EnsureRelation of an existing relation advanced the version")
	}
	s.Add("R", "x", "y", "z")
	if s.Version() == v {
		t.Error("Add did not advance the version")
	}
	v = s.Version()
	s.Add("R", "x", "y", "z") // duplicate: no state change
	if s.Version() != v {
		t.Error("no-op Add advanced the version")
	}
	s.AddTriple("R", Triple{s.Lookup("x"), s.Lookup("y"), s.Lookup("z")})
	if s.Version() != v {
		t.Error("no-op AddTriple advanced the version")
	}
	if !s.Remove("R", "x", "y", "z") || s.Version() == v {
		t.Error("Remove did not advance the version")
	}
	v = s.Version()
	if s.Remove("R", "x", "y", "z") || s.Version() != v {
		t.Error("Remove of an absent triple advanced the version")
	}
}

// TestStatsTrackInternedObjects is the regression for the stale-|O| bug:
// a statistics snapshot taken after interning new objects must carry the
// new version, not serve the pre-Intern snapshot.
func TestStatsTrackInternedObjects(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	before := s.Stats()
	s.Intern("fresh-object")
	after := s.Stats()
	if after.Version == before.Version {
		t.Errorf("stats snapshot version stuck at %d although Intern grew |O|", before.Version)
	}
}

// TestVersionAtomicUnderRace reads the version (and version-keyed
// statistics) while writers mutate; run with -race to verify that
// Version is genuinely synchronization-free to poll.
func TestVersionAtomicUnderRace(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add("E", fmt.Sprintf("s%d-%d", w, i), "p", "b")
				s.SetValue(fmt.Sprintf("s%d-%d", w, i), V("v"))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < 400; i++ {
				v := s.Version()
				if v < last {
					t.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
				st := s.Stats()
				if st.Version > s.Version() {
					t.Error("stats snapshot from the future")
					return
				}
				_ = s.Size()
				_ = s.MutationStats()
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotIsolation pins the copy-on-write contract: a snapshot is
// frozen at its version, later writes to the live store (in-place or
// batched) are invisible to it, and mutating the snapshot itself panics.
func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	s.SetValue("a", V("old"))
	snap := s.Snapshot()
	if !snap.IsSnapshot() || s.IsSnapshot() {
		t.Fatal("IsSnapshot misreports")
	}
	if snap.Snapshot() != snap {
		t.Error("Snapshot of a snapshot is not itself")
	}

	// Warm the snapshot's access paths, then mutate the live store.
	_ = snap.Relation("E").Index(SPO)
	s.Add("E", "c", "p", "d")
	s.Remove("E", "a", "p", "b")
	s.SetValue("a", V("new"))
	s.Intern("ghost")
	s.EnsureRelation("F")

	if got := snap.Size(); got != 1 {
		t.Errorf("snapshot Size = %d after live mutations, want 1", got)
	}
	if !snap.Relation("E").Has(Triple{snap.Lookup("a"), snap.Lookup("p"), snap.Lookup("b")}) {
		t.Error("snapshot lost its triple")
	}
	if snap.Relation("F") != nil {
		t.Error("snapshot sees a relation created after it")
	}
	if got := snap.Value(snap.Lookup("a")); !got.Equal(V("old")) {
		t.Errorf("snapshot Value = %v, want old", got)
	}
	if snap.Lookup("ghost") != NoID {
		t.Error("snapshot resolves an object interned after it")
	}
	if n := snap.NumObjects(); n != 3 {
		t.Errorf("snapshot NumObjects = %d, want 3", n)
	}
	if live := s.Value(s.Lookup("a")); !live.Equal(V("new")) {
		t.Errorf("live Value = %v, want new", live)
	}

	for name, f := range map[string]func(){
		"Add":            func() { snap.Add("E", "x", "y", "z") },
		"AddTriple":      func() { snap.AddTriple("E", Triple{0, 0, 0}) },
		"Remove":         func() { snap.RemoveTriple("E", Triple{0, 0, 0}) },
		"SetValue":       func() { snap.SetValue("a", V("v")) },
		"Intern":         func() { snap.Intern("q") },
		"EnsureRelation": func() { snap.EnsureRelation("G") },
		"ApplyBatch":     func() { snap.ApplyBatch([]Op{{Rel: "E", S: "x", P: "y", O: "z"}}) },
		"RelationAdd":    func() { snap.Relation("E").Add(Triple{9, 9, 9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a snapshot did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSnapshotSharesUntilWrite checks that the copy-on-write is lazy:
// the snapshot and the live store share relation objects until the live
// side actually writes.
func TestSnapshotSharesUntilWrite(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("F", "a", "p", "b")
	snap := s.Snapshot()
	if snap.Relation("E") != s.Relation("E") {
		t.Fatal("snapshot does not share an untouched relation")
	}
	s.Add("E", "a", "p", "b") // duplicate: must not trigger copy-on-write
	if _, err := s.ApplyBatch([]Op{{Rel: "E", S: "a", P: "p", O: "b"}}); err != nil {
		t.Fatal(err)
	}
	if snap.Relation("E") != s.Relation("E") {
		t.Error("no-op insert cloned the shared relation")
	}
	s.Add("E", "c", "p", "d")
	if snap.Relation("E") == s.Relation("E") {
		t.Error("write did not clone the shared relation")
	}
	if snap.Relation("F") != s.Relation("F") {
		t.Error("write to E cloned unrelated F")
	}
}

func TestApplyBatch(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	v := s.Version()
	res, err := s.ApplyBatch([]Op{
		{Rel: "E", S: "a", P: "p", O: "b"}, // duplicate: no-op
		{Rel: "E", S: "c", P: "p", O: "d"},
		{Rel: "E", S: "e", P: "p", O: "f"},
		{Delete: true, Rel: "E", S: "a", P: "p", O: "b"},
		{Delete: true, Rel: "E", S: "no", P: "such", O: "triple"}, // absent: no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 2 || res.Removed != 1 {
		t.Errorf("BatchResult = %+v, want 2 added, 1 removed", res)
	}
	if got := s.Version(); got != v+1 {
		t.Errorf("version advanced by %d for one batch, want exactly 1", got-v)
	}
	if res.Version != s.Version() {
		t.Errorf("BatchResult.Version = %d, store at %d", res.Version, s.Version())
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d after batch, want 2", s.Size())
	}
	ms := s.MutationStats()
	if ms.Adds != 3 || ms.Removes != 1 || ms.Batches != 1 {
		t.Errorf("MutationStats = %+v", ms)
	}

	// A batch that changes nothing must not advance the version.
	v = s.Version()
	if _, err := s.ApplyBatch([]Op{{Rel: "E", S: "c", P: "p", O: "d"}}); err != nil {
		t.Fatal(err)
	}
	if s.Version() != v {
		t.Error("no-op batch advanced the version")
	}

	if _, err := s.ApplyBatch([]Op{{S: "x", P: "y", O: "z"}}); err == nil {
		t.Error("ApplyBatch accepted an op with no relation")
	}
}

func TestReadOps(t *testing.T) {
	in := `{"s":"a","p":"p","o":"b"}

{"rel":"F","s":"c","p":"q","o":"d"}
{"op":"delete","s":"a","p":"p","o":"b"}
`
	ops, err := ReadOps(strings.NewReader(in), "E")
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Rel: "E", S: "a", P: "p", O: "b"},
		{Rel: "F", S: "c", P: "q", O: "d"},
		{Delete: true, Rel: "E", S: "a", P: "p", O: "b"},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}

	for name, bad := range map[string]string{
		"malformed JSON": `{"s":`,
		"unknown op":     `{"op":"upsert","s":"a","p":"p","o":"b"}`,
		"missing field":  `{"s":"a","p":"p"}`,
		"no relation":    `{"s":"a","p":"p","o":"b"}`,
	} {
		def := "E"
		if name == "no relation" {
			def = ""
		}
		if _, err := ReadOps(strings.NewReader(bad), def); err == nil {
			t.Errorf("ReadOps accepted %s", name)
		}
	}

	// A single JSON object without trailing newline is a one-op batch.
	ops, err = ReadOps(strings.NewReader(`{"s":"x","p":"y","o":"z"}`), "E")
	if err != nil || len(ops) != 1 {
		t.Fatalf("single-object body: ops=%v err=%v", ops, err)
	}
}

// TestIncrementalIndexMaintenance pins the overlay behavior: once an
// index is built, store-mediated adds extend it (across the merge
// threshold) and lookups agree with a freshly built index; removal drops
// it for a rebuild.
func TestIncrementalIndexMaintenance(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Add("E", fmt.Sprintf("s%d", i), "p", "o")
	}
	r := s.Relation("E")
	for perm := SPO; perm < numPerms; perm++ {
		r.Index(perm) // build, so subsequent adds maintain incrementally
	}
	// Cross the tail-merge threshold.
	for i := 0; i < maxIndexTail+50; i++ {
		s.Add("E", "hub", fmt.Sprintf("p%d", i), fmt.Sprintf("o%d", i%7))
	}
	r = s.Relation("E")
	for perm := SPO; perm < numPerms; perm++ {
		ix := r.Index(perm)
		fresh := BuildIndex(r, perm)
		if ix.Len() != fresh.Len() {
			t.Fatalf("%v: incremental Len=%d, fresh Len=%d", perm, ix.Len(), fresh.Len())
		}
		got, want := ix.Triples(), fresh.Triples()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: order diverges at %d: %v vs %v", perm, i, got[i], want[i])
			}
		}
		for _, id := range []ID{s.Lookup("hub"), s.Lookup("s3"), s.Lookup("o2"), s.Lookup("p7"), NoID} {
			if g, w := ix.MatchCount(id), fresh.MatchCount(id); g != w {
				t.Errorf("%v: MatchCount(%d) = %d, fresh %d", perm, id, g, w)
			}
			gm, wm := ix.Match(id), fresh.Match(id)
			if len(gm) != len(wm) {
				t.Errorf("%v: Match(%d) lengths %d vs %d", perm, id, len(gm), len(wm))
				continue
			}
			seen := make(map[Triple]bool, len(wm))
			for _, t2 := range wm {
				seen[t2] = true
			}
			for _, t2 := range gm {
				if !seen[t2] {
					t.Errorf("%v: Match(%d) returned %v not in fresh index", perm, id, t2)
				}
			}
		}
	}

	// Removal invalidates: lookups must not see the removed triple.
	hub := s.Lookup("hub")
	if !s.Remove("E", "hub", "p0", "o0") {
		t.Fatal("Remove failed")
	}
	ix := s.Relation("E").Index(SPO)
	for _, m := range ix.Match(hub) {
		if m == (Triple{hub, s.Lookup("p0"), s.Lookup("o0")}) {
			t.Error("index still serves a removed triple")
		}
	}
}

// TestSnapshotIndexStableAcrossLiveAdds: a snapshot's already-built index
// must not grow when the live store extends the relation incrementally.
func TestSnapshotIndexStableAcrossLiveAdds(t *testing.T) {
	s := NewStore()
	for i := 0; i < 8; i++ {
		s.Add("E", fmt.Sprintf("s%d", i), "p", "o")
	}
	s.Relation("E").Index(POS) // warm before snapshot: index is shared
	snap := s.Snapshot()
	before := snap.Relation("E").Index(POS).Len()
	for i := 0; i < 20; i++ {
		s.Add("E", fmt.Sprintf("t%d", i), "p", "o")
	}
	if got := snap.Relation("E").Index(POS).Len(); got != before {
		t.Errorf("snapshot index grew from %d to %d", before, got)
	}
	if got := s.Relation("E").Index(POS).Len(); got != before+20 {
		t.Errorf("live index Len = %d, want %d", got, before+20)
	}
}
