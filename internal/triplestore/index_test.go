package triplestore

import (
	"math/rand"
	"testing"
)

func TestIndexMatch(t *testing.T) {
	r := RelationOf(
		Triple{1, 2, 3},
		Triple{1, 5, 3},
		Triple{2, 2, 1},
		Triple{3, 2, 3},
	)
	for _, tc := range []struct {
		perm Perm
		id   ID
		want int
	}{
		{SPO, 1, 2},
		{SPO, 2, 1},
		{SPO, 9, 0},
		{POS, 2, 3},
		{POS, 5, 1},
		{OSP, 3, 3},
		{OSP, 1, 1},
		{OSP, 7, 0},
	} {
		got := r.Index(tc.perm).Match(tc.id)
		if len(got) != tc.want {
			t.Errorf("%v.Match(%d) = %v, want %d triples", tc.perm, tc.id, got, tc.want)
		}
		for _, tr := range got {
			if tr[tc.perm.Lead()] != tc.id {
				t.Errorf("%v.Match(%d) returned %v with wrong lead component", tc.perm, tc.id, tr)
			}
		}
	}
}

func TestIndexAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRelation()
	for i := 0; i < 500; i++ {
		r.Add(Triple{ID(rng.Intn(20)), ID(rng.Intn(20)), ID(rng.Intn(20))})
	}
	for p := SPO; p < numPerms; p++ {
		ix := r.Index(p)
		if ix.Len() != r.Len() {
			t.Fatalf("%v index has %d triples, relation has %d", p, ix.Len(), r.Len())
		}
		for id := ID(0); id < 20; id++ {
			want := 0
			r.ForEach(func(tr Triple) {
				if tr[p.Lead()] == id {
					want++
				}
			})
			if got := ix.MatchCount(id); got != want {
				t.Errorf("%v.MatchCount(%d) = %d, want %d", p, id, got, want)
			}
		}
	}
}

func TestIndexLeads(t *testing.T) {
	r := RelationOf(
		Triple{3, 2, 3},
		Triple{1, 2, 3},
		Triple{1, 5, 3},
		Triple{2, 2, 1},
	)
	for _, tc := range []struct {
		perm Perm
		want []ID
	}{
		{SPO, []ID{1, 2, 3}},
		{POS, []ID{2, 5}},
		{OSP, []ID{1, 3}},
	} {
		got := r.Index(tc.perm).Leads()
		if len(got) != len(tc.want) {
			t.Fatalf("%v.Leads() = %v, want %v", tc.perm, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%v.Leads() = %v, want %v", tc.perm, got, tc.want)
			}
		}
	}
	// Incremental adds land in the tail overlay; Leads must still merge,
	// dedupe and sort across both runs.
	r.Add(Triple{0, 9, 9}) // new lead, sorts first
	r.Add(Triple{2, 9, 9}) // duplicate lead
	got := r.Index(SPO).Leads()
	want := []ID{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("after Add, SPO.Leads() = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after Add, SPO.Leads() = %v, want %v", got, want)
		}
	}
}

func TestIndexInvalidation(t *testing.T) {
	r := RelationOf(Triple{1, 1, 1})
	ix := r.Index(SPO)
	if ix.Len() != 1 {
		t.Fatalf("index len = %d, want 1", ix.Len())
	}
	r.Add(Triple{2, 2, 2})
	if got := r.Index(SPO).Len(); got != 2 {
		t.Fatalf("after Add, index len = %d, want 2", got)
	}
	// A clone shares the snapshot but invalidates independently.
	c := r.Clone()
	if got := c.Index(SPO).Len(); got != 2 {
		t.Fatalf("clone index len = %d, want 2", got)
	}
	c.Add(Triple{3, 3, 3})
	if got := c.Index(SPO).Len(); got != 3 {
		t.Fatalf("after clone Add, clone index len = %d, want 3", got)
	}
	if got := r.Index(SPO).Len(); got != 2 {
		t.Fatalf("original index len changed to %d, want 2", got)
	}
}
