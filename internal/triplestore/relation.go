package triplestore

import "sort"

// Relation is a set of triples — one of the ternary relations Ei of a
// triplestore, or the result of evaluating a (closed) algebra expression.
// The zero value is not usable; call NewRelation.
type Relation struct {
	set    map[Triple]struct{}
	sorted []Triple // cached sorted view; nil when stale
}

// NewRelation returns an empty relation.
func NewRelation() *Relation {
	return &Relation{set: make(map[Triple]struct{})}
}

// RelationOf builds a relation from the given triples.
func RelationOf(ts ...Triple) *Relation {
	r := NewRelation()
	for _, t := range ts {
		r.Add(t)
	}
	return r
}

// Add inserts t and reports whether it was new.
func (r *Relation) Add(t Triple) bool {
	if _, ok := r.set[t]; ok {
		return false
	}
	r.set[t] = struct{}{}
	r.sorted = nil
	return true
}

// Has reports membership of t.
func (r *Relation) Has(t Triple) bool {
	_, ok := r.set[t]
	return ok
}

// Len returns the number of triples.
func (r *Relation) Len() int { return len(r.set) }

// Triples returns the triples in lexicographic order. The returned slice
// is cached and must not be modified.
func (r *Relation) Triples() []Triple {
	if r.sorted == nil {
		r.sorted = make([]Triple, 0, len(r.set))
		for t := range r.set {
			r.sorted = append(r.sorted, t)
		}
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].Less(r.sorted[j]) })
	}
	return r.sorted
}

// ForEach calls f on every triple in unspecified order.
func (r *Relation) ForEach(f func(Triple)) {
	for t := range r.set {
		f(t)
	}
}

// Clone returns a copy of r.
func (r *Relation) Clone() *Relation {
	c := NewRelation()
	for t := range r.set {
		c.set[t] = struct{}{}
	}
	return c
}

// AddAll inserts every triple of s into r and reports how many were new.
func (r *Relation) AddAll(s *Relation) int {
	added := 0
	for t := range s.set {
		if r.Add(t) {
			added++
		}
	}
	return added
}

// Union returns a new relation containing the triples of a and b.
func Union(a, b *Relation) *Relation {
	r := a.Clone()
	r.AddAll(b)
	return r
}

// Difference returns a new relation containing triples of a not in b.
func Difference(a, b *Relation) *Relation {
	r := NewRelation()
	for t := range a.set {
		if !b.Has(t) {
			r.Add(t)
		}
	}
	return r
}

// Intersection returns a new relation containing triples in both a and b.
func Intersection(a, b *Relation) *Relation {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	r := NewRelation()
	for t := range small.set {
		if large.Has(t) {
			r.Add(t)
		}
	}
	return r
}

// Equal reports whether a and b contain exactly the same triples.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for t := range r.set {
		if !s.Has(t) {
			return false
		}
	}
	return true
}
