package triplestore

import (
	"sort"
	"sync"
)

// Relation is a set of triples — one of the ternary relations Ei of a
// triplestore, or the result of evaluating a (closed) algebra expression.
// The zero value is not usable; call NewRelation.
//
// A relation is safe for concurrent readers (Has, Triples, Index, ForEach,
// ...): the lazily built sorted view and permutation indexes are guarded
// by a mutex. Mutation (Add, AddAll, Remove) requires exclusive access.
// Store.Snapshot freezes its relations: a frozen relation rejects
// mutation (panics), and the live store transparently clones it on the
// next store-mediated write (copy-on-write), so snapshot readers never
// observe a change.
//
// A relation may be run-backed: set == nil with the sorted view holding
// the complete content (strictly sorted, duplicate-free). Bulk loading
// from a checkpoint segment produces these — membership is answered by
// binary search and the map is only materialized (ensureSet) when the
// relation is first mutated, so cold-start recovery never pays for a
// map it may never need.
//
// A relation may further be source-backed: set == nil and sorted == nil
// with src serving the content straight from storage (see RunSource).
// Reads decode only what they touch; full decodes are cached only when
// the source's residency policy allows, and the first mutation
// materializes the membership map exactly like the run-backed case.
type Relation struct {
	set    map[Triple]struct{} // nil ⇒ run- or source-backed
	src    RunSource           // non-nil ⇒ content may be served from storage
	frozen bool                // set by Store.Snapshot; mutation panics, the store clones first

	mu     sync.Mutex       // guards the lazy caches below
	sorted []Triple         // cached sorted view; nil when stale
	idx    [numPerms]*Index // cached permutation indexes; nil when stale
	stats  *RelStats        // cached statistics; nil when stale
}

// NewRelation returns an empty relation.
func NewRelation() *Relation {
	return &Relation{set: make(map[Triple]struct{})}
}

// NewRelationCap returns an empty relation with capacity for n triples.
func NewRelationCap(n int) *Relation {
	return &Relation{set: make(map[Triple]struct{}, n)}
}

// RelationOf builds a relation from the given triples.
func RelationOf(ts ...Triple) *Relation {
	r := NewRelationCap(len(ts))
	for _, t := range ts {
		r.Add(t)
	}
	return r
}

// Add inserts t and reports whether it was new. Permutation indexes that
// have already been built are maintained incrementally (each gains t in
// its sorted overlay) instead of being dropped for a full rebuild; the
// sorted view and statistics are still invalidated.
func (r *Relation) Add(t Triple) bool {
	if r.frozen {
		panic("triplestore: Add on a frozen (snapshot) relation")
	}
	r.ensureSet()
	if _, ok := r.set[t]; ok {
		return false
	}
	r.set[t] = struct{}{}
	r.sorted = nil
	r.stats = nil
	for p, ix := range r.idx {
		if ix != nil {
			r.idx[p] = ix.withAdded(t)
		}
	}
	return true
}

// Remove deletes t and reports whether it was present. Unlike Add,
// removal invalidates the permutation indexes (the overlay handles
// additions only); the next probe rebuilds them.
func (r *Relation) Remove(t Triple) bool {
	if r.frozen {
		panic("triplestore: Remove on a frozen (snapshot) relation")
	}
	r.ensureSet()
	if _, ok := r.set[t]; !ok {
		return false
	}
	delete(r.set, t)
	r.sorted = nil
	r.idx = [numPerms]*Index{}
	r.stats = nil
	return true
}

// ensureSet materializes the membership map of a run- or source-backed
// relation. Callers must hold exclusive access (it is only reached from
// mutation paths, which require that anyway).
//
// The decode itself is transient as far as the residency tracker is
// concerned: evaluators clone base relations and mutate the clones (a
// reach fixpoint seeds from its base), and that working set belongs to
// the query, not to the store. Only the store's own write path promotes
// the underlying relation — see forceResident.
func (r *Relation) ensureSet() {
	if r.set != nil {
		return
	}
	ts := r.sorted
	if r.src != nil {
		if ts == nil {
			ts = r.src.Run(SPO)
		}
		r.src = nil
	}
	set := make(map[Triple]struct{}, len(ts))
	for _, t := range ts {
		set[t] = struct{}{}
	}
	r.set = set
}

// forceResident promotes a source-backed relation in its source's
// residency accounting. The store's write path calls it on the live
// relation before mutating: the write is about to materialize the
// relation on the heap (ensureSet), so the tracker must account for it
// even past the budget. Evaluator clones sharing the same source never
// call this — their materialized working set dies with the query and
// must not flip the store's relation to resident.
func (r *Relation) forceResident() {
	if r.set == nil && r.src != nil {
		r.src.Retain(true)
	}
}

// Has reports membership of t.
func (r *Relation) Has(t Triple) bool {
	if r.set == nil {
		if r.src != nil {
			// Source-backed: probe the storage blocks covering t's
			// subject. r.sorted is deliberately not consulted here — it
			// may be cached concurrently under the relation's mutex, and
			// the source answers without coordination.
			for _, c := range r.src.Match(SPO, t[0]) {
				if c == t {
					return true
				}
			}
			return false
		}
		ts := r.sorted
		i := sort.Search(len(ts), func(i int) bool { return !ts[i].Less(t) })
		return i < len(ts) && ts[i] == t
	}
	_, ok := r.set[t]
	return ok
}

// Len returns the number of triples.
func (r *Relation) Len() int {
	if r.set == nil {
		if r.src != nil {
			return r.src.Len()
		}
		return len(r.sorted)
	}
	return len(r.set)
}

// Triples returns the triples in lexicographic order. The returned slice
// must not be modified. It is cached — except on a source-backed
// relation whose residency policy forbids retention, where each call
// decodes a fresh (transient) slice.
func (r *Relation) Triples() []Triple {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sortedLocked()
}

// Slice returns the triples in unspecified order: the cached sorted view
// when one exists, otherwise an unsorted copy — cheaper than Triples()
// when the caller only iterates. The returned slice must not be modified.
func (r *Relation) Slice() []Triple {
	r.mu.Lock()
	if r.sorted != nil || (r.set == nil && r.src != nil) {
		s := r.sortedLocked()
		r.mu.Unlock()
		return s
	}
	r.mu.Unlock()
	out := make([]Triple, 0, len(r.set))
	for t := range r.set {
		out = append(out, t)
	}
	return out
}

// ForEach calls f on every triple in unspecified order.
func (r *Relation) ForEach(f func(Triple)) {
	if r.set == nil {
		if r.src != nil {
			// Decode under the mutex (caching per residency policy),
			// iterate outside it: returned slices are immutable.
			r.mu.Lock()
			ts := r.sortedLocked()
			r.mu.Unlock()
			for _, t := range ts {
				f(t)
			}
			return
		}
		for _, t := range r.sorted {
			f(t)
		}
		return
	}
	for t := range r.set {
		f(t)
	}
}

// Clone returns an unfrozen copy of r. The sorted view and permutation
// indexes are shared with r (both are immutable snapshots, replaced or
// dropped independently on mutation), so cloning before a fixpoint does
// not re-sort — and the store's copy-on-write of a frozen relation keeps
// its access paths warm.
func (r *Relation) Clone() *Relation {
	c := &Relation{}
	if r.set != nil {
		c.set = make(map[Triple]struct{}, len(r.set))
		for t := range r.set {
			c.set[t] = struct{}{}
		}
	}
	// A run-backed clone stays run-backed, and a source-backed clone
	// stays source-backed (sources are immutable and safely shared): the
	// shared sorted view is never mutated in place (Add/Remove
	// materialize a private map and drop the cache), so copy-on-write of
	// a bulk-loaded relation is a pointer copy until someone actually
	// writes to the copy.
	r.mu.Lock()
	c.sorted = r.sorted
	c.src = r.src
	c.idx = r.idx
	c.stats = r.stats
	r.mu.Unlock()
	return c
}

// AddAll inserts every triple of s into r and reports how many were new.
func (r *Relation) AddAll(s *Relation) int {
	added := 0
	s.ForEach(func(t Triple) {
		if r.Add(t) {
			added++
		}
	})
	return added
}

// Union returns a new relation containing the triples of a and b.
func Union(a, b *Relation) *Relation {
	r := a.Clone()
	r.AddAll(b)
	return r
}

// Difference returns a new relation containing triples of a not in b.
func Difference(a, b *Relation) *Relation {
	r := NewRelationCap(a.Len())
	a.ForEach(func(t Triple) {
		if !b.Has(t) {
			r.Add(t)
		}
	})
	return r
}

// Intersection returns a new relation containing triples in both a and b.
func Intersection(a, b *Relation) *Relation {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	r := NewRelationCap(small.Len())
	small.ForEach(func(t Triple) {
		if large.Has(t) {
			r.Add(t)
		}
	})
	return r
}

// Equal reports whether a and b contain exactly the same triples.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	if r.set == nil {
		var ts []Triple
		if r.src != nil {
			ts = r.Triples() // locked: r.sorted may be cached concurrently
		} else {
			ts = r.sorted
		}
		for _, t := range ts {
			if !s.Has(t) {
				return false
			}
		}
		return true
	}
	for t := range r.set {
		if !s.Has(t) {
			return false
		}
	}
	return true
}
