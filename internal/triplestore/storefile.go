package triplestore

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadStore loads a store from the extended text format: triple lines as
// in ReadTriples, plus directive lines assigning data values and choosing
// the target relation:
//
//	@rel part_of                    # subsequent triples go to "part_of"
//	@value o175	Mario	m@nes.com	23	\N	\N
//
// A value line names an object and tab-separated tuple fields; \N denotes
// a null field. Objects named in @value lines are interned even if they
// appear in no triple. Triples before the first @rel directive go to the
// relation named "E".
func ReadStore(r io.Reader) (*Store, error) {
	return ReadStoreDefault(r, "E")
}

// ReadStoreDefault is ReadStore with a custom initial relation name.
func ReadStoreDefault(r io.Reader, rel string) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "@rel "):
			rel = strings.TrimSpace(strings.TrimPrefix(text, "@rel "))
			if rel == "" {
				return nil, fmt.Errorf("line %d: empty @rel", line)
			}
		case strings.HasPrefix(text, "@value "):
			rest := strings.TrimPrefix(text, "@value ")
			parts := strings.Split(rest, "\t")
			if len(parts) < 2 {
				return nil, fmt.Errorf("line %d: @value needs a name and at least one field", line)
			}
			name := unquoteField(strings.TrimSpace(parts[0]))
			v := make(Value, 0, len(parts)-1)
			for _, f := range parts[1:] {
				f = strings.TrimSpace(f)
				if f == `\N` {
					v = append(v, Null())
				} else {
					v = append(v, F(unquoteField(f)))
				}
			}
			s.SetValue(name, v)
		default:
			fields, err := splitFields(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want 3 fields, got %d", line, len(fields))
			}
			s.Add(rel, fields[0], fields[1], fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func unquoteField(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// WriteStore writes the store in the format read by ReadStore: one @rel
// block per relation (in creation order) and @value lines for every
// object with a data value.
func WriteStore(s *Store, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, rel := range s.RelationNames() {
		if _, err := fmt.Fprintf(bw, "@rel %s\n", rel); err != nil {
			return err
		}
		for _, t := range s.Relation(rel).Triples() {
			if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", s.Name(t[0]), s.Name(t[1]), s.Name(t[2])); err != nil {
				return err
			}
		}
	}
	for id := ID(0); int(id) < s.NumObjects(); id++ {
		v := s.Value(id)
		if v == nil {
			continue
		}
		fields := make([]string, len(v))
		for i, f := range v {
			if f.Null {
				fields[i] = `\N`
			} else {
				fields[i] = f.Str
			}
		}
		if _, err := fmt.Fprintf(bw, "@value %s\t%s\n", s.Name(id), strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
