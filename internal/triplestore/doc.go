// Package triplestore implements the triplestore data model of
// Libkin, Reutter and Vrgoč, "TriAL for RDF" (PODS 2013), Definition 1:
// a triplestore database T = (O, E1, ..., En, ρ) consists of a finite set
// of objects O, one or more ternary relations Ei over O, and a function ρ
// assigning a data value to each object.
//
// Objects are interned to dense numeric IDs so that relations can be
// stored compactly and the evaluation algorithms of the paper (which
// assume an array representation, §5) can be implemented directly.
//
// The store is mutable under concurrent readers: mutations go through
// Store methods (Add, Remove, SetValue, ApplyBatch, ...), which are
// serialized internally and advance an atomic version counter, while
// readers that need a consistent view evaluate against Store.Snapshot —
// an immutable copy-on-write view whose relations are frozen and cloned
// by the live store before its next write. ApplyBatch ingests NDJSON
// batches (ReadOps) and advances the version once per batch, making the
// batch the unit of visibility for concurrent queries. Already-built
// permutation indexes are maintained incrementally on insertion (a
// sorted overlay per Index, merged when it outgrows a threshold) rather
// than rebuilt from scratch.
//
// ShardedStore hash-partitions every relation by subject into a
// configurable number of shards alongside the authoritative union store,
// implementing the same mutation/snapshot contract (shadowed mutators
// fan each write to union and partition under one atomic version;
// Snapshot freezes both levels copy-on-write). The TriAL* algebra's
// closure under union makes shard-wise evaluation sound, which
// internal/engine exploits for partition-parallel execution and
// internal/proptest pins byte-identical to the flat store.
package triplestore
