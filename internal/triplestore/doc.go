// Package triplestore implements the triplestore data model of
// Libkin, Reutter and Vrgoč, "TriAL for RDF" (PODS 2013), Definition 1:
// a triplestore database T = (O, E1, ..., En, ρ) consists of a finite set
// of objects O, one or more ternary relations Ei over O, and a function ρ
// assigning a data value to each object.
//
// Objects are interned to dense numeric IDs so that relations can be
// stored compactly and the evaluation algorithms of the paper (which
// assume an array representation, §5) can be implemented directly.
package triplestore
