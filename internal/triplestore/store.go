package triplestore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Store is a triplestore database T = (O, E1, ..., En, ρ): a dictionary of
// objects, a collection of named ternary relations, and a data-value
// assignment ρ. It is the input model for all query languages in this
// repository (TriAL, TriAL*, the Datalog fragments, and — via encodings —
// the graph query languages).
//
// # Mutation and snapshots
//
// A Store is safe for concurrent use when every mutation goes through its
// own methods (Add, AddTriple, Remove, RemoveTriple, SetValue, Intern,
// EnsureRelation, ApplyBatch): writers are serialized by an internal
// lock, and every state change advances the version counter. Readers
// that must observe a consistent state while writers run — the execution
// engine above all — evaluate against Snapshot(), an immutable
// copy-on-write view. Point reads on the live store (Size, NumObjects,
// Version, Name, Lookup, Value, Stats, ActiveDomain, ...) are also safe
// concurrently with writers, though successive calls may observe
// different versions. What is NOT safe is holding a *Relation obtained
// from the live store (Relation, EnsureRelation) across concurrent
// writes — the store mutates live relations in place; take the relation
// from a Snapshot instead.
//
// Mutating a Relation obtained from the store directly bypasses the
// version counter and the copy-on-write machinery; it is only sound
// while the store is provably private (e.g. single-threaded loading
// before the store is shared), and remains outside the concurrent
// contract.
type Store struct {
	dict    *Dict
	version atomic.Uint64

	// frozen marks an immutable Snapshot view: mutators panic, readers
	// skip locking, and dictLen bounds the visible dictionary prefix.
	frozen  bool
	dictLen int

	mu              sync.RWMutex
	rels            map[string]*Relation
	relNames        []string
	values          []Value
	valuesSharedLen int // prefix of values shared with snapshots; in-place writes below it copy first

	// Mutation counters (MutationStats): lifetime totals, not reset by
	// snapshots. Only the live store advances them.
	adds      atomic.Uint64
	removes   atomic.Uint64
	batches   atomic.Uint64
	snapshots atomic.Uint64

	statsCache statsCache // lazily computed statistics snapshot (stats.go)
}

// NewStore returns an empty triplestore.
func NewStore() *Store {
	return &Store{dict: NewDict(), rels: make(map[string]*Relation)}
}

// ensureMutable panics when s is a read-only Snapshot view.
func (s *Store) ensureMutable() {
	if s.frozen {
		panic("triplestore: mutation of a read-only Snapshot")
	}
}

// IsSnapshot reports whether s is an immutable Snapshot view.
func (s *Store) IsSnapshot() bool { return s.frozen }

// bumpVersion advances the version counter by one.
func (s *Store) bumpVersion() { s.version.Add(1) }

// Intern returns the ID of the object named name, creating it if needed.
// Interning a new object grows |O| and therefore advances the version
// (statistics and plans that saw the old |O| are stale); interning an
// existing name is a pure read.
func (s *Store) Intern(name string) ID {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	id, isNew := s.internLocked(name)
	if isNew {
		s.bumpVersion()
	}
	return id
}

// internLocked interns name and grows the values slice, without touching
// the version counter. Callers hold s.mu and bump the version themselves
// (once per logical mutation, however many objects it interns).
func (s *Store) internLocked(name string) (ID, bool) {
	id, isNew := s.dict.intern(name)
	for int(id) >= len(s.values) {
		// Appending never disturbs snapshot readers: they hold a slice
		// header bounded at the length current when the snapshot was
		// taken, so new slots (even in a shared backing array) are
		// invisible to them.
		s.values = append(s.values, nil)
	}
	return id, isNew
}

// Lookup returns the ID of name, or NoID if name is not an object of the store.
// On a Snapshot view, objects interned after the snapshot resolve to NoID.
func (s *Store) Lookup(name string) ID {
	id := s.dict.Lookup(name)
	if s.frozen && id != NoID && int(id) >= s.dictLen {
		return NoID
	}
	return id
}

// Name returns the name of the object with the given ID.
func (s *Store) Name(id ID) string { return s.dict.Name(id) }

// NumObjects returns the number of interned objects |O|.
func (s *Store) NumObjects() int {
	if s.frozen {
		return s.dictLen
	}
	return s.dict.Len()
}

// SetValue assigns the data value ρ(o) = v for the object named name,
// interning the object if needed.
func (s *Store) SetValue(name string, v Value) ID {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	id, _ := s.internLocked(name)
	if int(id) < s.valuesSharedLen {
		// The slot is visible to at least one snapshot: copy the shared
		// prefix before writing in place.
		owned := make([]Value, len(s.values))
		copy(owned, s.values)
		s.values = owned
		s.valuesSharedLen = 0
	}
	s.values[id] = v
	s.bumpVersion()
	return id
}

// Version returns a counter that advances on every state change made
// through the store's own methods: inserting or removing triples,
// creating relations, interning new objects, assigning data values, and
// applying batches (which advance it once per batch). Callers that cache
// work derived from the store's contents — compiled query plans,
// materialized indexes, statistics — use it as a cheap snapshot key:
// equal versions of the same Store mean the cached artifact is still
// valid. The read is atomic, so the version can be polled while writers
// run; to evaluate against a consistent state, pair it with Snapshot().
func (s *Store) Version() uint64 { return s.version.Load() }

// Value returns ρ(o) for the object with the given ID (nil if unset).
func (s *Store) Value(id ID) Value {
	if s.frozen {
		if int(id) >= len(s.values) {
			return nil
		}
		return s.values[id]
	}
	s.mu.RLock()
	var v Value
	if int(id) < len(s.values) {
		v = s.values[id]
	}
	s.mu.RUnlock()
	return v
}

// SameValue reports whether ρ(a) = ρ(b), i.e. the relation ∼ of §4.
func (s *Store) SameValue(a, b ID) bool { return s.Value(a).Equal(s.Value(b)) }

// mutableRelLocked returns the named relation ready for mutation,
// creating it if absent and cloning it first (copy-on-write) when it is
// frozen into a snapshot. Callers hold s.mu and bump the version.
func (s *Store) mutableRelLocked(name string) *Relation {
	r, ok := s.rels[name]
	if !ok {
		r = NewRelation()
		s.rels[name] = r
		s.relNames = append(s.relNames, name)
		return r
	}
	if r.frozen {
		r = r.Clone()
		s.rels[name] = r
	}
	// A store-mediated write is about to materialize a source-backed
	// relation (ensureSet); promote it in the residency accounting first
	// so the tracker reflects the heap it is about to own. Evaluator
	// clones materialize without this — their working set is the query's,
	// not the store's.
	r.forceResident()
	return r
}

// EnsureRelation returns the relation with the given name, creating an
// empty one if it does not exist. The returned relation is mutable (a
// copy-on-write clone if the stored one was frozen by a snapshot), but
// mutating it directly bypasses the version counter — see the type
// documentation.
func (s *Store) EnsureRelation(name string) *Relation {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.rels[name]
	r := s.mutableRelLocked(name)
	if !existed {
		s.bumpVersion()
	}
	return r
}

// Relation returns the relation with the given name, or nil. On a live
// store with concurrent writers, the returned relation may be mutated in
// place by the store — read relations through a Snapshot when writers
// may be running.
func (s *Store) Relation(name string) *Relation {
	if s.frozen {
		return s.rels[name]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rels[name]
}

// RelationNames returns the relation names in creation order. The
// returned slice must not be modified.
func (s *Store) RelationNames() []string {
	if s.frozen {
		return s.relNames
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.relNames[:len(s.relNames):len(s.relNames)]
}

// Add interns the three object names and inserts the triple into the named
// relation. It returns the inserted triple. Like ApplyBatch, a no-op
// insert (triple present, all names interned) leaves the version alone.
func (s *Store) Add(rel, subj, pred, obj string) Triple {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	r, hadRel := s.rels[rel]
	si, new1 := s.internLocked(subj)
	pi, new2 := s.internLocked(pred)
	oi, new3 := s.internLocked(obj)
	t := Triple{si, pi, oi}
	if hadRel && !new1 && !new2 && !new3 && r.Has(t) {
		// Pure no-op: don't version-bump, and in particular don't
		// copy-on-write a snapshot-frozen relation just to re-insert.
		return t
	}
	if s.mutableRelLocked(rel).Add(t) {
		s.adds.Add(1)
	}
	s.bumpVersion()
	return t
}

// AddTriple inserts an already-interned triple into the named relation.
// A duplicate insert into an existing relation leaves the version alone.
func (s *Store) AddTriple(rel string, t Triple) {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rels[rel]; ok && r.Has(t) {
		return // no-op: no version bump, no copy-on-write
	}
	if s.mutableRelLocked(rel).Add(t) {
		s.adds.Add(1)
	}
	s.bumpVersion()
}

// RemoveTriple deletes an already-interned triple from the named relation
// and reports whether it was present. Object names stay interned (IDs are
// never reclaimed).
func (s *Store) RemoveTriple(rel string, t Triple) bool {
	s.ensureMutable()
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[rel]
	if !ok || !r.Has(t) {
		return false
	}
	s.mutableRelLocked(rel).Remove(t)
	s.removes.Add(1)
	s.bumpVersion()
	return true
}

// Remove deletes the triple named by the three object names from the
// named relation and reports whether it was present. Names that were
// never interned cannot name a stored triple.
func (s *Store) Remove(rel, subj, pred, obj string) bool {
	si, pi, oi := s.dict.Lookup(subj), s.dict.Lookup(pred), s.dict.Lookup(obj)
	if si == NoID || pi == NoID || oi == NoID {
		return false
	}
	return s.RemoveTriple(rel, Triple{si, pi, oi})
}

// Snapshot returns an immutable view of the store at its current
// version: a copy-on-write Store sharing the dictionary (append-only and
// internally synchronized), the data-value assignment and every relation
// with the live store. The snapshot never changes — subsequent writes to
// the live store clone any shared relation (and the shared value prefix)
// before mutating — so engines and statistics keyed on the snapshot's
// version can evaluate lock-free while ingest proceeds. Snapshotting a
// snapshot returns the receiver. Mutating a snapshot panics.
func (s *Store) Snapshot() *Store {
	if s.frozen {
		return s
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Store{
		dict:    s.dict,
		frozen:  true,
		dictLen: s.dict.Len(),
		rels:    make(map[string]*Relation, len(s.rels)),
		values:  s.values[:len(s.values):len(s.values)],
	}
	snap.relNames = append(snap.relNames, s.relNames...)
	for name, r := range s.rels {
		r.frozen = true
		snap.rels[name] = r
	}
	s.valuesSharedLen = len(s.values)
	snap.version.Store(s.version.Load())
	s.snapshots.Add(1)
	return snap
}

// MutationStats are lifetime mutation counters for a store, surfaced by
// the query layer and the server's /stats endpoint.
type MutationStats struct {
	// Adds and Removes count triples actually inserted and deleted
	// (duplicate inserts and absent deletes do not count).
	Adds    uint64 `json:"adds"`
	Removes uint64 `json:"removes"`
	// Batches counts ApplyBatch calls.
	Batches uint64 `json:"batches"`
	// Snapshots counts Snapshot() calls on the live store.
	Snapshots uint64 `json:"snapshots"`
	// Version is the store version at the time of the snapshot of these
	// counters.
	Version uint64 `json:"version"`
}

// MutationStats returns a snapshot of the store's mutation counters.
func (s *Store) MutationStats() MutationStats {
	return MutationStats{
		Adds:      s.adds.Load(),
		Removes:   s.removes.Load(),
		Batches:   s.batches.Load(),
		Snapshots: s.snapshots.Load(),
		Version:   s.version.Load(),
	}
}

// Size returns the total number of triples across all relations, |T|.
func (s *Store) Size() int {
	if !s.frozen {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns, in ascending order, the IDs of objects occurring
// in at least one triple of at least one relation. This is the domain used
// for the universal relation U of §3 ("all triples (o1,o2,o3) so that each
// oi occurs in T") and hence for complements.
func (s *Store) ActiveDomain() []ID {
	if !s.frozen {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	seen := make(map[ID]struct{})
	for _, r := range s.rels {
		r.ForEach(func(t Triple) {
			seen[t[0]] = struct{}{}
			seen[t[1]] = struct{}{}
			seen[t[2]] = struct{}{}
		})
	}
	out := make([]ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FormatTriple renders a triple with object names, for human consumption.
func (s *Store) FormatTriple(t Triple) string {
	return fmt.Sprintf("(%s, %s, %s)", s.Name(t[0]), s.Name(t[1]), s.Name(t[2]))
}

// FormatRelation renders all triples of r, sorted, one per line.
func (s *Store) FormatRelation(r *Relation) string {
	out := ""
	for _, t := range r.Triples() {
		out += s.FormatTriple(t) + "\n"
	}
	return out
}

// Clone returns a deep copy of the store sharing no mutable state. Unlike
// Snapshot, the copy is itself mutable and fully independent (its own
// dictionary), at the cost of copying everything eagerly.
func (s *Store) Clone() *Store {
	if !s.frozen {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	c := NewStore()
	names := s.dict.Names()
	if s.frozen {
		names = names[:s.dictLen]
	}
	for _, name := range names {
		c.dict.Intern(name)
	}
	c.values = make([]Value, len(s.values))
	for i, v := range s.values {
		if v != nil {
			w := make(Value, len(v))
			copy(w, v)
			c.values[i] = w
		}
	}
	for _, name := range s.relNames {
		c.rels[name] = s.rels[name].Clone()
		c.relNames = append(c.relNames, name)
	}
	return c
}
