package triplestore

import (
	"fmt"
	"sort"
)

// Store is a triplestore database T = (O, E1, ..., En, ρ): a dictionary of
// objects, a collection of named ternary relations, and a data-value
// assignment ρ. It is the input model for all query languages in this
// repository (TriAL, TriAL*, the Datalog fragments, and — via encodings —
// the graph query languages).
type Store struct {
	dict     *Dict
	rels     map[string]*Relation
	relNames []string
	values   []Value
	version  uint64

	statsCache statsCache // lazily computed statistics snapshot (stats.go)
}

// NewStore returns an empty triplestore.
func NewStore() *Store {
	return &Store{dict: NewDict(), rels: make(map[string]*Relation)}
}

// Intern returns the ID of the object named name, creating it if needed.
func (s *Store) Intern(name string) ID {
	id := s.dict.Intern(name)
	for int(id) >= len(s.values) {
		s.values = append(s.values, nil)
	}
	return id
}

// Lookup returns the ID of name, or NoID if name is not an object of the store.
func (s *Store) Lookup(name string) ID { return s.dict.Lookup(name) }

// Name returns the name of the object with the given ID.
func (s *Store) Name(id ID) string { return s.dict.Name(id) }

// NumObjects returns the number of interned objects |O|.
func (s *Store) NumObjects() int { return s.dict.Len() }

// SetValue assigns the data value ρ(o) = v for the object named name,
// interning the object if needed.
func (s *Store) SetValue(name string, v Value) ID {
	id := s.Intern(name)
	s.values[id] = v
	s.version++
	return id
}

// Version returns a counter that advances on every mutation made through
// the store's own methods (Add, AddTriple, SetValue, EnsureRelation).
// Callers that cache work derived from the store's contents — compiled
// query plans, materialized indexes — use it as a cheap snapshot key:
// equal versions of the same Store mean the cached artifact is still
// valid. Mutating a Relation obtained from the store directly bypasses
// the counter, which is outside the store's mutation contract anyway
// (see the Engine documentation in internal/engine).
func (s *Store) Version() uint64 { return s.version }

// Value returns ρ(o) for the object with the given ID (nil if unset).
func (s *Store) Value(id ID) Value {
	if int(id) >= len(s.values) {
		return nil
	}
	return s.values[id]
}

// SameValue reports whether ρ(a) = ρ(b), i.e. the relation ∼ of §4.
func (s *Store) SameValue(a, b ID) bool { return s.Value(a).Equal(s.Value(b)) }

// EnsureRelation returns the relation with the given name, creating an
// empty one if it does not exist.
func (s *Store) EnsureRelation(name string) *Relation {
	if r, ok := s.rels[name]; ok {
		return r
	}
	r := NewRelation()
	s.rels[name] = r
	s.relNames = append(s.relNames, name)
	s.version++
	return r
}

// Relation returns the relation with the given name, or nil.
func (s *Store) Relation(name string) *Relation { return s.rels[name] }

// RelationNames returns the relation names in creation order.
func (s *Store) RelationNames() []string { return s.relNames }

// Add interns the three object names and inserts the triple into the named
// relation. It returns the inserted triple.
func (s *Store) Add(rel, subj, pred, obj string) Triple {
	t := Triple{s.Intern(subj), s.Intern(pred), s.Intern(obj)}
	s.EnsureRelation(rel).Add(t)
	s.version++
	return t
}

// AddTriple inserts an already-interned triple into the named relation.
func (s *Store) AddTriple(rel string, t Triple) {
	s.EnsureRelation(rel).Add(t)
	s.version++
}

// Size returns the total number of triples across all relations, |T|.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns, in ascending order, the IDs of objects occurring
// in at least one triple of at least one relation. This is the domain used
// for the universal relation U of §3 ("all triples (o1,o2,o3) so that each
// oi occurs in T") and hence for complements.
func (s *Store) ActiveDomain() []ID {
	seen := make(map[ID]struct{})
	for _, r := range s.rels {
		r.ForEach(func(t Triple) {
			seen[t[0]] = struct{}{}
			seen[t[1]] = struct{}{}
			seen[t[2]] = struct{}{}
		})
	}
	out := make([]ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FormatTriple renders a triple with object names, for human consumption.
func (s *Store) FormatTriple(t Triple) string {
	return fmt.Sprintf("(%s, %s, %s)", s.Name(t[0]), s.Name(t[1]), s.Name(t[2]))
}

// FormatRelation renders all triples of r, sorted, one per line.
func (s *Store) FormatRelation(r *Relation) string {
	out := ""
	for _, t := range r.Triples() {
		out += s.FormatTriple(t) + "\n"
	}
	return out
}

// Clone returns a deep copy of the store sharing no mutable state.
func (s *Store) Clone() *Store {
	c := NewStore()
	for _, name := range s.dict.Names() {
		c.Intern(name)
	}
	copy(c.values, s.values)
	for i, v := range s.values {
		if v != nil {
			w := make(Value, len(v))
			copy(w, v)
			c.values[i] = w
		}
	}
	for _, name := range s.relNames {
		c.rels[name] = s.rels[name].Clone()
		c.relNames = append(c.relNames, name)
	}
	return c
}
