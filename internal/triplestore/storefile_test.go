package triplestore

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadStoreBasics(t *testing.T) {
	in := `# a store with two relations and values
a	p	b
@rel F
b	q	c
@value a	Mario	m@nes.com
@value c	\N	rival
`
	s, err := ReadStore(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Relation("E").Len() != 1 || s.Relation("F").Len() != 1 {
		t.Fatalf("relation sizes: E=%d F=%d", s.Relation("E").Len(), s.Relation("F").Len())
	}
	a := s.Value(s.Lookup("a"))
	if len(a) != 2 || a[0].Str != "Mario" {
		t.Errorf("value(a) = %v", a)
	}
	c := s.Value(s.Lookup("c"))
	if len(c) != 2 || !c[0].Null || c[1].Str != "rival" {
		t.Errorf("value(c) = %v", c)
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("Other", "St. Andrews", "Bus Op 1", "Edinburgh")
	s.SetValue("a", Value{F("x"), Null(), F("z")})
	s.SetValue("orphan", V("only-a-value"))
	var buf bytes.Buffer
	if err := WriteStore(s, &buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() != 2 {
		t.Fatalf("round trip size = %d", s2.Size())
	}
	if s2.Lookup("St. Andrews") == NoID {
		t.Error("name with spaces lost")
	}
	if !s2.Value(s2.Lookup("a")).Equal(Value{F("x"), Null(), F("z")}) {
		t.Errorf("value(a) = %v", s2.Value(s2.Lookup("a")))
	}
	if !s2.Value(s2.Lookup("orphan")).Equal(V("only-a-value")) {
		t.Error("orphan value lost")
	}
	names := s2.RelationNames()
	if len(names) != 2 || names[0] != "E" || names[1] != "Other" {
		t.Errorf("relations = %v", names)
	}
}

func TestReadStoreErrors(t *testing.T) {
	for _, in := range []string{
		"@rel ",
		"@value onlyname",
		"a b",
		"a b c d",
	} {
		if _, err := ReadStore(strings.NewReader(in)); err == nil {
			t.Errorf("ReadStore(%q): want error", in)
		}
	}
}
