package triplestore

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatalf("distinct names share ID %d", a)
	}
	if got := d.Intern("a"); got != a {
		t.Errorf("re-intern a: got %d want %d", got, a)
	}
	if got := d.Lookup("c"); got != NoID {
		t.Errorf("lookup of missing name: got %d want NoID", got)
	}
	if d.Name(a) != "a" || d.Name(b) != "b" {
		t.Errorf("names roundtrip failed: %q %q", d.Name(a), d.Name(b))
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestTripleOrder(t *testing.T) {
	ts := []Triple{{2, 0, 0}, {1, 2, 3}, {1, 2, 2}, {0, 9, 9}}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	want := []Triple{{0, 9, 9}, {1, 2, 2}, {1, 2, 3}, {2, 0, 0}}
	for i := range ts {
		if ts[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestTripleAccessors(t *testing.T) {
	tr := Triple{1, 2, 3}
	if tr.S() != 1 || tr.P() != 2 || tr.O() != 3 {
		t.Errorf("accessors: got %d %d %d", tr.S(), tr.P(), tr.O())
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation()
	if !r.Add(Triple{1, 2, 3}) {
		t.Error("first Add returned false")
	}
	if r.Add(Triple{1, 2, 3}) {
		t.Error("duplicate Add returned true")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Has(Triple{1, 2, 3}) || r.Has(Triple{3, 2, 1}) {
		t.Error("Has misbehaves")
	}
}

func TestRelationTriplesSorted(t *testing.T) {
	r := RelationOf(Triple{5, 5, 5}, Triple{1, 1, 1}, Triple{3, 3, 3})
	got := r.Triples()
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("not sorted at %d: %v %v", i, got[i-1], got[i])
		}
	}
	// Cache invalidation after Add.
	r.Add(Triple{0, 0, 0})
	got = r.Triples()
	if got[0] != (Triple{0, 0, 0}) {
		t.Fatalf("after Add, first = %v", got[0])
	}
}

func TestRelationSetOps(t *testing.T) {
	a := RelationOf(Triple{1, 1, 1}, Triple{2, 2, 2})
	b := RelationOf(Triple{2, 2, 2}, Triple{3, 3, 3})
	if got := Union(a, b); got.Len() != 3 {
		t.Errorf("union size = %d, want 3", got.Len())
	}
	if got := Intersection(a, b); got.Len() != 1 || !got.Has(Triple{2, 2, 2}) {
		t.Errorf("intersection = %v", got.Triples())
	}
	if got := Difference(a, b); got.Len() != 1 || !got.Has(Triple{1, 1, 1}) {
		t.Errorf("difference = %v", got.Triples())
	}
	// Operands must be untouched.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("set ops mutated operands")
	}
}

func TestRelationEqualClone(t *testing.T) {
	a := RelationOf(Triple{1, 2, 3}, Triple{4, 5, 6})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(Triple{7, 8, 9})
	if a.Equal(b) || a.Len() != 2 {
		t.Fatal("clone shares state")
	}
}

func TestSetOpsProperties(t *testing.T) {
	mk := func(ts []uint8) *Relation {
		r := NewRelation()
		for i := 0; i+2 < len(ts); i += 3 {
			r.Add(Triple{ID(ts[i] % 4), ID(ts[i+1] % 4), ID(ts[i+2] % 4)})
		}
		return r
	}
	// |A ∪ B| = |A| + |B| − |A ∩ B| and A − B disjoint from B.
	prop := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		u := Union(a, b)
		i := Intersection(a, b)
		d := Difference(a, b)
		if u.Len() != a.Len()+b.Len()-i.Len() {
			return false
		}
		ok := true
		d.ForEach(func(t Triple) {
			if b.Has(t) {
				ok = false
			}
		})
		return ok && Union(d, i).Equal(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreInternAndValues(t *testing.T) {
	s := NewStore()
	a := s.Intern("a")
	if s.Lookup("a") != a {
		t.Error("lookup after intern failed")
	}
	if s.Value(a) != nil {
		t.Error("fresh object has non-nil value")
	}
	s.SetValue("a", V("x", "y"))
	if !s.Value(a).Equal(V("x", "y")) {
		t.Errorf("value = %v", s.Value(a))
	}
	b := s.SetValue("b", V("x", "y"))
	if !s.SameValue(a, b) {
		t.Error("SameValue(a,b) = false for equal tuples")
	}
	c := s.Intern("c")
	if s.SameValue(a, c) {
		t.Error("SameValue(a,c) = true for value vs nil")
	}
	d := s.Intern("d")
	if !s.SameValue(c, d) {
		t.Error("two nil values should compare equal")
	}
}

func TestStoreAddAndSize(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "a", "p", "b") // duplicate
	s.Add("F", "b", "q", "c")
	if s.Size() != 2 {
		t.Errorf("Size = %d, want 2", s.Size())
	}
	if got := s.RelationNames(); len(got) != 2 || got[0] != "E" || got[1] != "F" {
		t.Errorf("RelationNames = %v", got)
	}
	if s.Relation("G") != nil {
		t.Error("missing relation should be nil")
	}
}

func TestActiveDomain(t *testing.T) {
	s := NewStore()
	s.Intern("unused")
	s.Add("E", "a", "p", "b")
	dom := s.ActiveDomain()
	if len(dom) != 3 {
		t.Fatalf("active domain size = %d, want 3 (unused object excluded)", len(dom))
	}
	for i := 1; i < len(dom); i++ {
		if dom[i-1] >= dom[i] {
			t.Fatal("active domain not strictly sorted")
		}
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.SetValue("a", V("1"))
	s.Add("E", "a", "p", "b")
	c := s.Clone()
	c.Add("E", "x", "y", "z")
	c.SetValue("a", V("2"))
	if s.Size() != 1 {
		t.Error("clone mutation leaked into original relations")
	}
	if !s.Value(s.Lookup("a")).Equal(V("1")) {
		t.Error("clone mutation leaked into original values")
	}
}

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{nil, nil, true},
		{nil, V("x"), false},
		{V("x"), V("x"), true},
		{V("x"), V("y"), false},
		{V("x"), V("x", "y"), false},
		{Value{Null()}, Value{Null()}, true},
		{Value{Null()}, V(""), false},
		{V("a", "b"), V("a", "b"), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("case %d: Equal(%v,%v) = %v, want %v", i, c.a, c.b, got, c.eq)
		}
	}
}

func TestValueComponentEqual(t *testing.T) {
	a := Value{F("x"), Null(), F("z")}
	b := Value{F("x"), F("y"), F("w")}
	if !a.ComponentEqual(b, 0) {
		t.Error("component 0 should be equal")
	}
	if a.ComponentEqual(b, 1) {
		t.Error("null vs y should differ")
	}
	if a.ComponentEqual(b, 2) {
		t.Error("z vs w should differ")
	}
	// Out-of-range components are null on both sides.
	if !a.ComponentEqual(b, 7) {
		t.Error("out-of-range components should compare equal (both null)")
	}
}

func TestValueKeyDistinct(t *testing.T) {
	vals := []Value{nil, {}, V(""), V("x"), V("x", ""), V("", "x"), {Null()}, {Null(), Null()}, V("x", "y")}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("values %v and %v share key %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestReadWriteTriples(t *testing.T) {
	in := `# comment
a p b
"St. Andrews" "Bus Op 1" Edinburgh

x	y	z
`
	s := NewStore()
	if err := ReadTriples(s, strings.NewReader(in), "E"); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3", s.Size())
	}
	if s.Lookup("St. Andrews") == NoID {
		t.Error("quoted name with spaces not interned")
	}
	var buf bytes.Buffer
	if err := WriteTriples(s, &buf, "E"); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := ReadTriples(s2, &buf, "E"); err != nil {
		t.Fatal(err)
	}
	if s2.Size() != 3 {
		t.Errorf("roundtrip Size = %d, want 3", s2.Size())
	}
	if s2.Lookup("Bus Op 1") == NoID {
		t.Error("roundtrip lost quoted name")
	}
}

func TestReadTriplesErrors(t *testing.T) {
	for _, bad := range []string{"a b", "a b c d", `"unterminated`} {
		s := NewStore()
		if err := ReadTriples(s, strings.NewReader(bad), "E"); err == nil {
			t.Errorf("input %q: want error", bad)
		}
	}
}

func TestWriteTriplesMissingRelation(t *testing.T) {
	s := NewStore()
	var buf bytes.Buffer
	if err := WriteTriples(s, &buf, "nope"); err == nil {
		t.Error("want error for missing relation")
	}
}

func TestFormatTriple(t *testing.T) {
	s := NewStore()
	tr := s.Add("E", "a", "p", "b")
	if got := s.FormatTriple(tr); got != "(a, p, b)" {
		t.Errorf("FormatTriple = %q", got)
	}
}

func TestVersionAdvancesOnMutation(t *testing.T) {
	s := NewStore()
	v0 := s.Version()
	s.Add("E", "a", "p", "b")
	if s.Version() == v0 {
		t.Error("Add did not advance the version")
	}
	v1 := s.Version()
	s.AddTriple("E", Triple{s.Intern("a"), s.Intern("p"), s.Intern("c")})
	if s.Version() == v1 {
		t.Error("AddTriple did not advance the version")
	}
	v2 := s.Version()
	s.SetValue("a", V("1"))
	if s.Version() == v2 {
		t.Error("SetValue did not advance the version")
	}
	v3 := s.Version()
	s.EnsureRelation("F")
	if s.Version() == v3 {
		t.Error("EnsureRelation (new relation) did not advance the version")
	}
	v4 := s.Version()
	// Read-only operations leave the version alone.
	s.Lookup("a")
	s.Intern("a")
	s.Relation("E")
	s.EnsureRelation("E")
	_ = s.ActiveDomain()
	if s.Version() != v4 {
		t.Error("read-only operations advanced the version")
	}
}
