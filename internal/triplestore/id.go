package triplestore

import "fmt"

// ID is a dense identifier for an interned object. IDs are assigned
// consecutively from 0 by a Dict and are only meaningful relative to the
// store that created them.
type ID uint32

// NoID is returned by lookups for objects that have not been interned.
const NoID = ID(^uint32(0))

// Triple is an ordered triple of object IDs (subject, predicate, object).
// The paper writes triples as (o1, o2, o3); positions are indexed 0, 1, 2
// here and 1, 2, 3 in paper notation.
type Triple [3]ID

// S returns the subject (first) component.
func (t Triple) S() ID { return t[0] }

// P returns the predicate (second) component.
func (t Triple) P() ID { return t[1] }

// O returns the object (third) component.
func (t Triple) O() ID { return t[2] }

// Less reports whether t precedes u in lexicographic order.
func (t Triple) Less(u Triple) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	if t[1] != u[1] {
		return t[1] < u[1]
	}
	return t[2] < u[2]
}

func (t Triple) String() string {
	return fmt.Sprintf("(%d,%d,%d)", t[0], t[1], t[2])
}
