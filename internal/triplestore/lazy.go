package triplestore

import "sort"

// RunSource serves a relation's content directly from storage — the seam
// the disk engine's segment reader plugs into so a relation can be
// queried without being materialized in memory first. A source-backed
// Relation (set == nil, sorted == nil, src != nil) routes membership,
// scans, statistics and index probes through its source; the source
// decodes only what each call touches, so a point probe on a
// million-triple relation reads a handful of storage blocks, not the
// relation.
//
// Implementations must be safe for concurrent use and immutable: the
// same source is shared by a live relation, its copy-on-write snapshot
// clones, and any in-flight lazy Index values. All triples are in
// subject-predicate-object component order; Run and Match return them
// sorted by the permutation's key order (the order Index guarantees).
//
// Retain is the residency seam: it reports whether decoded runs may be
// cached in RAM. The storage engine's policy promotes a relation after
// enough accesses, within a configurable byte budget; force (used by the
// mutation path, which must materialize to apply writes) promotes
// unconditionally. Until Retain says yes, every full decode is
// transient — the caller uses the slice and lets the GC take it — which
// is what keeps a cold store's heap bounded by the query's working set
// rather than the store size.
type RunSource interface {
	// Len returns the relation's cardinality, cheaply.
	Len() int
	// Run returns the full content sorted in perm key order. The slice
	// is freshly decoded (or cached by the source) and must not be
	// modified.
	Run(perm Perm) []Triple
	// Match returns the triples whose perm-leading component equals id,
	// in perm key order, decoding only the storage blocks that cover id.
	Match(perm Perm, id ID) []Triple
	// Leads returns the distinct values of perm's leading position in
	// ascending order (Index.Leads semantics).
	Leads(perm Perm) []ID
	// Retain reports whether decoded runs may be cached on the relation
	// (residency). force promotes unconditionally and is used by the
	// mutation path.
	Retain(force bool) bool
}

// SourceBacked reports whether the relation currently serves reads from
// a RunSource rather than from materialized in-memory state. It is a
// residency observation only — results are identical either way.
func (r *Relation) SourceBacked() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set == nil && r.sorted == nil && r.src != nil
}

// sortedLocked returns the relation's sorted view, materializing it from
// the set or the source as needed. A source-backed relation caches the
// decoded run only when the source's residency policy allows (Retain);
// otherwise the slice is transient and the next call decodes again.
// Callers hold r.mu.
func (r *Relation) sortedLocked() []Triple {
	if r.sorted != nil {
		return r.sorted
	}
	if r.set == nil && r.src != nil {
		ts := r.src.Run(SPO)
		if r.src.Retain(false) {
			r.sorted = ts
		}
		return ts
	}
	sorted := make([]Triple, 0, len(r.set))
	for t := range r.set {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	r.sorted = sorted
	return sorted
}
