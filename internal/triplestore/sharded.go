package triplestore

import (
	"io"
	"sync"
)

// DefaultShards is the shard count used when a caller asks for sharding
// without picking a number.
const DefaultShards = 4

// maxShards bounds the shard count: beyond a few hundred partitions the
// per-shard relations are too small to amortize any per-shard work.
const maxShards = 256

// ShardedStore is a triplestore whose relations are hash-partitioned by
// subject: alongside the authoritative union Store (the embedded Store,
// which keeps the full dictionary, data-value assignment ρ and every
// relation whole), each named relation is split into NumShards disjoint
// partitions, triple t living in partition ShardOf(t[0]).
//
// # Why subject, and why this is sound
//
// The subject is the shard key because it is the position the TriAL*
// algebra probes most: composition-shaped join conditions (3 = 1′, the
// reachability primitives of §5) key the probed side on its subject, so
// a probe value identifies its shard directly. Soundness rests on the
// algebra's closure under union: every relation R equals ⋃ᵢ Rᵢ over any
// disjoint partition, and join, selection and the semi-naive star step
// all distribute over union in the partitioned operand — so evaluating
// per shard and merging is byte-identical to evaluating the union
// (internal/proptest pins this property against the flat engine and the
// reference Evaluator).
//
// # Mutation and snapshots
//
// A ShardedStore implements the same mutation contract as Store: every
// write goes through its own methods (Add, AddTriple, Remove,
// RemoveTriple, ApplyBatch, ApplyNDJSON — all shadowed here so the
// partitions stay in lockstep with the union), writers are serialized,
// the version advances exactly as the union Store's does (once per
// batch), and Snapshot returns an immutable view of union and
// partitions at one version, copy-on-write on both levels. Mutating the
// embedded Store directly (or a snapshot) bypasses the partitions and is
// outside the contract, exactly like mutating a Relation taken from a
// plain Store.
type ShardedStore struct {
	*Store
	nShards int

	// smu serializes partition maintenance against Snapshot, so a
	// snapshot never observes the union ahead of the partitions.
	smu   sync.Mutex
	parts map[string][]*Relation
}

// NewShardedStore returns an empty store partitioned into nShards shards
// (clamped to [1, 256]).
func NewShardedStore(nShards int) *ShardedStore {
	return Shard(NewStore(), nShards)
}

// Shard wraps an existing store, partitioning its current triples by
// subject into nShards shards (clamped to [1, 256]). The store is read,
// not copied: the ShardedStore becomes its owner, and from here on every
// mutation must go through the ShardedStore's methods so the partitions
// stay consistent with the union.
func Shard(s *Store, nShards int) *ShardedStore {
	if nShards < 1 {
		nShards = 1
	}
	if nShards > maxShards {
		nShards = maxShards
	}
	ss := &ShardedStore{Store: s, nShards: nShards, parts: make(map[string][]*Relation)}
	for _, name := range s.RelationNames() {
		parts := ss.newParts()
		s.Relation(name).ForEach(func(t Triple) {
			parts[ss.ShardOf(t[0])].Add(t)
		})
		ss.parts[name] = parts
	}
	return ss
}

func (ss *ShardedStore) newParts() []*Relation {
	parts := make([]*Relation, ss.nShards)
	for i := range parts {
		parts[i] = NewRelation()
	}
	return parts
}

// NumShards returns the shard count.
func (ss *ShardedStore) NumShards() int { return ss.nShards }

// ShardOf returns the shard owning triples whose subject is id. The hash
// is a fixed multiplicative (Fibonacci) mix so the mapping is stable
// across processes — required for the partition-probe join, which routes
// each probe value to one shard.
func (ss *ShardedStore) ShardOf(id ID) int {
	if ss.nShards == 1 {
		return 0
	}
	h := (uint64(id) * 0x9E3779B97F4A7C15) >> 32
	return int(h % uint64(ss.nShards))
}

// ShardRelations returns the partitions of the named relation, one per
// shard (nil when the relation does not exist). On a Snapshot view the
// partitions are immutable; on a live store they must not be held across
// concurrent writes — exactly the Relation contract of the flat Store.
func (ss *ShardedStore) ShardRelations(name string) []*Relation {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	parts := ss.parts[name]
	if parts == nil {
		if ss.Store.Relation(name) == nil {
			return nil
		}
		// Relation created through the union store before wrapping, or
		// via EnsureRelation: materialize empty partitions lazily.
		parts = ss.newParts()
		ss.parts[name] = parts
	}
	return parts[:len(parts):len(parts)]
}

// partLocked returns the partition ready for mutation, cloning it first
// when a snapshot froze it. Callers hold ss.smu.
func (ss *ShardedStore) partLocked(name string, shard int) *Relation {
	parts := ss.parts[name]
	if parts == nil {
		parts = ss.newParts()
		ss.parts[name] = parts
	}
	if parts[shard].frozen {
		parts[shard] = parts[shard].Clone()
	}
	return parts[shard]
}

// routeAdd inserts t into its partition (no-op when already present, so
// a duplicate insert does not copy-on-write a frozen partition).
func (ss *ShardedStore) routeAdd(rel string, t Triple) {
	shard := ss.ShardOf(t[0])
	if parts := ss.parts[rel]; parts != nil && parts[shard].Has(t) {
		return
	}
	ss.partLocked(rel, shard).Add(t)
}

// routeRemove deletes t from its partition (checking presence first, so
// an absent delete does not copy-on-write a frozen partition).
func (ss *ShardedStore) routeRemove(rel string, t Triple) {
	parts := ss.parts[rel]
	if parts == nil {
		return
	}
	shard := ss.ShardOf(t[0])
	if !parts[shard].Has(t) {
		return
	}
	ss.partLocked(rel, shard).Remove(t)
}

// Add interns the three object names and inserts the triple into the
// named relation of the union store and into its shard partition.
func (ss *ShardedStore) Add(rel, subj, pred, obj string) Triple {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	t := ss.Store.Add(rel, subj, pred, obj)
	ss.routeAdd(rel, t)
	return t
}

// AddTriple inserts an already-interned triple into the named relation
// and its shard partition.
func (ss *ShardedStore) AddTriple(rel string, t Triple) {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	ss.Store.AddTriple(rel, t)
	ss.routeAdd(rel, t)
}

// RemoveTriple deletes an already-interned triple from the named
// relation and its shard partition, reporting whether it was present.
func (ss *ShardedStore) RemoveTriple(rel string, t Triple) bool {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	removed := ss.Store.RemoveTriple(rel, t)
	if removed {
		ss.routeRemove(rel, t)
	}
	return removed
}

// Remove deletes the triple named by the three object names and reports
// whether it was present.
func (ss *ShardedStore) Remove(rel, subj, pred, obj string) bool {
	si, pi, oi := ss.Lookup(subj), ss.Lookup(pred), ss.Lookup(obj)
	if si == NoID || pi == NoID || oi == NoID {
		return false
	}
	return ss.RemoveTriple(rel, Triple{si, pi, oi})
}

// ApplyBatch applies the ops as one atomic batch to the union store (one
// version bump for the whole batch, as in Store.ApplyBatch) and routes
// each effective mutation to its shard partition before any snapshot can
// observe the new version.
func (ss *ShardedStore) ApplyBatch(ops []Op) (BatchResult, error) {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	res, err := ss.Store.ApplyBatch(ops)
	if err != nil {
		return res, err
	}
	// Replay the batch against the partitions in op order. All names an
	// add op mentions are interned now; a delete op whose names resolve
	// refers to a triple that, if it was ever present, is routed the same
	// way the union processed it (routeAdd/routeRemove are idempotent and
	// presence-checked, so no-ops in the union are no-ops here too).
	for _, op := range ops {
		si, pi, oi := ss.dict.Lookup(op.S), ss.dict.Lookup(op.P), ss.dict.Lookup(op.O)
		if si == NoID || pi == NoID || oi == NoID {
			continue // delete of never-interned names: union no-op
		}
		t := Triple{si, pi, oi}
		if op.Delete {
			ss.routeRemove(op.Rel, t)
		} else {
			ss.routeAdd(op.Rel, t)
		}
	}
	return res, nil
}

// ApplyNDJSON reads a batch from r (ReadOps format) and applies it as
// one ApplyBatch call through the sharded routing.
func (ss *ShardedStore) ApplyNDJSON(r io.Reader, defaultRel string) (BatchResult, error) {
	ops, err := ReadOps(r, defaultRel)
	if err != nil {
		return BatchResult{}, err
	}
	return ss.ApplyBatch(ops)
}

// Snapshot returns an immutable view of the sharded store at its current
// version: the union Store's copy-on-write snapshot plus the partition
// relations frozen at the same instant. Subsequent writes to the live
// store clone any frozen partition before mutating, so engines holding
// the snapshot evaluate lock-free while ingest proceeds. Snapshotting a
// snapshot returns the receiver.
func (ss *ShardedStore) Snapshot() *ShardedStore {
	if ss.IsSnapshot() {
		return ss
	}
	ss.smu.Lock()
	defer ss.smu.Unlock()
	snap := &ShardedStore{
		Store:   ss.Store.Snapshot(),
		nShards: ss.nShards,
		parts:   make(map[string][]*Relation, len(ss.parts)),
	}
	for name, parts := range ss.parts {
		frozen := make([]*Relation, len(parts))
		for i, p := range parts {
			p.frozen = true
			frozen[i] = p
		}
		snap.parts[name] = frozen
	}
	return snap
}

// ShardStat summarizes one shard for observability (the server's /stats
// endpoint): how many triples it holds across all relations.
type ShardStat struct {
	Shard   int `json:"shard"`
	Triples int `json:"triples"`
}

// ShardStats returns per-shard triple counts across all relations, in
// shard order. The skew between shards is the number to watch: the
// partition-parallel executor's win is bounded by the largest shard.
func (ss *ShardedStore) ShardStats() []ShardStat {
	ss.smu.Lock()
	defer ss.smu.Unlock()
	out := make([]ShardStat, ss.nShards)
	for i := range out {
		out[i].Shard = i
	}
	for _, parts := range ss.parts {
		for i, p := range parts {
			out[i].Triples += p.Len()
		}
	}
	return out
}
