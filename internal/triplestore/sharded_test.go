package triplestore

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// partitionUnion rebuilds the union of a relation's partitions.
func partitionUnion(parts []*Relation) *Relation {
	u := NewRelation()
	for _, p := range parts {
		u.AddAll(p)
	}
	return u
}

// checkPartitionInvariant asserts, for every relation, that the shard
// partitions are disjoint, correctly routed, and union to exactly the
// union store's relation.
func checkPartitionInvariant(t *testing.T, ss *ShardedStore) {
	t.Helper()
	for _, name := range ss.RelationNames() {
		rel := ss.Relation(name)
		parts := ss.ShardRelations(name)
		if len(parts) != ss.NumShards() {
			t.Fatalf("%s: %d partitions, want %d", name, len(parts), ss.NumShards())
		}
		total := 0
		for i, p := range parts {
			total += p.Len()
			p.ForEach(func(tr Triple) {
				if ss.ShardOf(tr[0]) != i {
					t.Errorf("%s: triple %v in shard %d, ShardOf says %d", name, tr, i, ss.ShardOf(tr[0]))
				}
				if !rel.Has(tr) {
					t.Errorf("%s: partition triple %v missing from union", name, tr)
				}
			})
		}
		if total != rel.Len() {
			t.Errorf("%s: partitions hold %d triples, union holds %d", name, total, rel.Len())
		}
	}
}

func TestShardWrapsExistingStore(t *testing.T) {
	s := NewStore()
	for i := 0; i < 40; i++ {
		s.Add("E", fmt.Sprintf("s%d", i%13), "p", fmt.Sprintf("o%d", i))
	}
	s.Add("F", "a", "b", "c")
	ss := Shard(s, 4)
	if ss.NumShards() != 4 {
		t.Fatalf("NumShards = %d", ss.NumShards())
	}
	checkPartitionInvariant(t, ss)
	// Shard count is clamped, not rejected.
	if got := Shard(NewStore(), 0).NumShards(); got != 1 {
		t.Errorf("Shard(.., 0).NumShards() = %d, want 1", got)
	}
	if got := Shard(NewStore(), 100000).NumShards(); got != maxShards {
		t.Errorf("Shard(.., 1e5).NumShards() = %d, want %d", got, maxShards)
	}
}

func TestShardedMutationsKeepPartitionsInLockstep(t *testing.T) {
	ss := NewShardedStore(3)
	rng := rand.New(rand.NewSource(17))
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("o%d", i)
	}
	pick := func() string { return names[rng.Intn(len(names))] }
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			ss.Add("E", pick(), pick(), pick())
		case 2:
			ss.Remove("E", pick(), pick(), pick())
		default:
			tr := ss.Add("G", pick(), pick(), pick())
			ss.RemoveTriple("G", tr)
		}
	}
	checkPartitionInvariant(t, ss)

	// AddTriple with interned IDs routes too.
	a, b := ss.Intern("x"), ss.Intern("y")
	ss.AddTriple("E", Triple{a, b, a})
	checkPartitionInvariant(t, ss)
}

func TestShardedApplyBatchAtomicAndRouted(t *testing.T) {
	ss := NewShardedStore(4)
	ss.Add("E", "a", "p", "b")
	v0 := ss.Version()

	res, err := ss.ApplyBatch([]Op{
		{Rel: "E", S: "b", P: "p", O: "c"},
		{Rel: "E", S: "c", P: "p", O: "d"},
		{Rel: "E", S: "a", P: "p", O: "b"},                // duplicate: no-op
		{Delete: true, Rel: "E", S: "a", P: "p", O: "b"},  // delete existing
		{Delete: true, Rel: "E", S: "zz", P: "p", O: "b"}, // never interned: no-op
		{Rel: "F", S: "a", P: "q", O: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 3 || res.Removed != 1 {
		t.Fatalf("BatchResult = %+v, want 3 added 1 removed", res)
	}
	if ss.Version() != v0+1 {
		t.Errorf("version advanced by %d, want 1 (atomic batch)", ss.Version()-v0)
	}
	checkPartitionInvariant(t, ss)

	// Delete-then-add of the same triple in one batch nets to present.
	if _, err := ss.ApplyBatch([]Op{
		{Delete: true, Rel: "E", S: "b", P: "p", O: "c"},
		{Rel: "E", S: "b", P: "p", O: "c"},
	}); err != nil {
		t.Fatal(err)
	}
	if !ss.Relation("E").Has(Triple{ss.Lookup("b"), ss.Lookup("p"), ss.Lookup("c")}) {
		t.Error("delete-then-add batch lost the triple")
	}
	checkPartitionInvariant(t, ss)

	// An op with an empty relation name rejects the whole batch.
	if _, err := ss.ApplyBatch([]Op{{S: "a", P: "b", O: "c"}}); err == nil {
		t.Error("ApplyBatch accepted an op with no relation")
	}
}

func TestShardedApplyNDJSON(t *testing.T) {
	ss := NewShardedStore(2)
	body := `{"s":"a","p":"p","o":"b"}
{"s":"b","p":"p","o":"c"}
{"op":"delete","s":"a","p":"p","o":"b"}`
	res, err := ss.ApplyNDJSON(strings.NewReader(body), "E")
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 2 || res.Removed != 1 {
		t.Fatalf("BatchResult = %+v", res)
	}
	checkPartitionInvariant(t, ss)
}

// TestShardedSnapshotIsolation pins the two-level copy-on-write: a
// snapshot's partitions never change while the live store keeps
// mutating, and the snapshot stays internally consistent (partitions
// union to the snapshot's relations).
func TestShardedSnapshotIsolation(t *testing.T) {
	ss := NewShardedStore(4)
	for i := 0; i < 32; i++ {
		ss.Add("E", fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
	}
	snap := ss.Snapshot()
	if snap.Snapshot() != snap {
		t.Error("snapshot of a snapshot is not the receiver")
	}
	wantSize := snap.Size()
	wantParts := make(map[int]int)
	for i, p := range snap.ShardRelations("E") {
		wantParts[i] = p.Len()
	}

	// Mutate the live store heavily: adds, removes, a batch.
	for i := 0; i < 32; i++ {
		ss.Add("E", fmt.Sprintf("s%d", i), "q", "new")
	}
	ss.Remove("E", "s0", "p", "o0")
	if _, err := ss.ApplyBatch([]Op{{Delete: true, Rel: "E", S: "s1", P: "p", O: "o1"}}); err != nil {
		t.Fatal(err)
	}

	if snap.Size() != wantSize {
		t.Errorf("snapshot size changed: %d -> %d", wantSize, snap.Size())
	}
	for i, p := range snap.ShardRelations("E") {
		if p.Len() != wantParts[i] {
			t.Errorf("snapshot shard %d changed: %d -> %d", i, wantParts[i], p.Len())
		}
	}
	checkPartitionInvariant(t, snap)
	checkPartitionInvariant(t, ss)

	// Mutating a snapshot panics, exactly like the flat store.
	defer func() {
		if recover() == nil {
			t.Error("Add on a sharded snapshot did not panic")
		}
	}()
	snap.Add("E", "x", "y", "z")
}

// TestShardedConcurrentBatchesAndSnapshots exercises ApplyBatch racing
// Snapshot under -race: every snapshot must observe a batch boundary
// (base size plus a multiple of the batch size) in both the union and
// the partitions.
func TestShardedConcurrentBatchesAndSnapshots(t *testing.T) {
	const batchSize, nBatches = 7, 20
	ss := NewShardedStore(4)
	ss.Add("E", "seed", "p", "seed2")
	base := ss.Size()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < nBatches; b++ {
			ops := make([]Op, batchSize)
			for i := range ops {
				ops[i] = Op{Rel: "E", S: fmt.Sprintf("s%d-%d", b, i), P: "p", O: "t"}
			}
			if _, err := ss.ApplyBatch(ops); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				snap := ss.Snapshot()
				if extra := snap.Size() - base; extra < 0 || extra%batchSize != 0 {
					t.Errorf("snapshot saw %d triples: not on a batch boundary", snap.Size())
					return
				}
				total := 0
				for _, p := range snap.ShardRelations("E") {
					total += p.Len()
				}
				if total != snap.Relation("E").Len() {
					t.Errorf("snapshot partitions (%d) diverge from union (%d)", total, snap.Relation("E").Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	checkPartitionInvariant(t, ss)
	if want := base + batchSize*nBatches; ss.Size() != want {
		t.Errorf("final size = %d, want %d", ss.Size(), want)
	}
}

func TestShardOfStableAndBounded(t *testing.T) {
	ss := NewShardedStore(8)
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		sh := ss.ShardOf(ID(i))
		if sh != ss.ShardOf(ID(i)) {
			t.Fatal("ShardOf is not deterministic")
		}
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardOf out of range: %d", sh)
		}
		counts[sh]++
	}
	for i, c := range counts {
		if c < 4096/8/2 || c > 4096/8*2 {
			t.Errorf("shard %d holds %d of 4096 sequential IDs: badly skewed", i, c)
		}
	}
	// Single-shard stores route everything to shard 0.
	one := NewShardedStore(1)
	for i := 0; i < 10; i++ {
		if one.ShardOf(ID(i)) != 0 {
			t.Fatal("single-shard ShardOf != 0")
		}
	}
}

func TestShardStats(t *testing.T) {
	ss := NewShardedStore(4)
	for i := 0; i < 50; i++ {
		ss.Add("E", fmt.Sprintf("s%d", i), "p", "o")
	}
	st := ss.ShardStats()
	if len(st) != 4 {
		t.Fatalf("ShardStats len = %d", len(st))
	}
	total := 0
	for i, s := range st {
		if s.Shard != i {
			t.Errorf("ShardStats[%d].Shard = %d", i, s.Shard)
		}
		total += s.Triples
	}
	if total != 50 {
		t.Errorf("ShardStats total = %d, want 50", total)
	}
}

// TestShardRelationsLazyForEnsureRelation pins lazy partition creation
// for relations created through the promoted EnsureRelation.
func TestShardRelationsLazyForEnsureRelation(t *testing.T) {
	ss := NewShardedStore(2)
	ss.EnsureRelation("Empty")
	parts := ss.ShardRelations("Empty")
	if len(parts) != 2 || parts[0].Len() != 0 || parts[1].Len() != 0 {
		t.Fatalf("lazy partitions wrong: %v", parts)
	}
	if ss.ShardRelations("NoSuch") != nil {
		t.Error("ShardRelations for a missing relation should be nil")
	}
}
