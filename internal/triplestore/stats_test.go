package triplestore

import "testing"

// recount computes a relation's statistics by brute force, as the oracle
// for the cached Stats.
func recount(r *Relation) RelStats {
	var counts [3]map[ID]int
	for i := range counts {
		counts[i] = make(map[ID]int)
	}
	n := 0
	r.ForEach(func(t Triple) {
		n++
		for i := 0; i < 3; i++ {
			counts[i][t[i]]++
		}
	})
	st := RelStats{Triples: n, Distinct: [3]int{len(counts[0]), len(counts[1]), len(counts[2])}}
	for i, c := range counts {
		for _, k := range c {
			if k > st.MaxMatch[i] {
				st.MaxMatch[i] = k
			}
		}
	}
	return st
}

func TestRelationStats(t *testing.T) {
	r := RelationOf(
		Triple{1, 10, 2},
		Triple{1, 10, 3},
		Triple{2, 11, 3},
	)
	st := r.Stats()
	want := RelStats{Triples: 3, Distinct: [3]int{2, 2, 2}, MaxMatch: [3]int{2, 2, 2}}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	// Cached value is returned while the relation is unchanged.
	if again := r.Stats(); again != st {
		t.Fatalf("second Stats = %+v, want cached %+v", again, st)
	}
	// Mutation invalidates the cache.
	r.Add(Triple{7, 10, 2})
	st = r.Stats()
	if st != recount(r) {
		t.Fatalf("Stats after Add = %+v, want %+v", st, recount(r))
	}
	if st.Triples != 4 || st.Distinct[0] != 3 {
		t.Fatalf("Stats after Add = %+v, want 4 triples, 3 distinct subjects", st)
	}
}

func TestRelStatsFanout(t *testing.T) {
	st := RelStats{Triples: 100, Distinct: [3]int{50, 2, 100}}
	if got := st.Fanout(0); got != 2 {
		t.Errorf("Fanout(0) = %v, want 2", got)
	}
	if got := st.Fanout(1); got != 50 {
		t.Errorf("Fanout(1) = %v, want 50", got)
	}
	if got := st.Fanout(2); got != 1 {
		t.Errorf("Fanout(2) = %v, want 1", got)
	}
	if got := (RelStats{}).Fanout(0); got != 0 {
		t.Errorf("empty Fanout = %v, want 0", got)
	}
	// A degenerate distinct count of 0 with triples present (cannot happen
	// via Stats, but Fanout must not divide by zero).
	if got := (RelStats{Triples: 5}).Fanout(1); got != 5 {
		t.Errorf("zero-distinct Fanout = %v, want 5", got)
	}
}

func TestRelStatsWorstFanout(t *testing.T) {
	// A skewed relation: one hub subject with 3 edges, two singletons.
	r := RelationOf(
		Triple{1, 10, 2},
		Triple{1, 10, 3},
		Triple{1, 11, 4},
		Triple{5, 11, 6},
		Triple{7, 12, 8},
	)
	st := r.Stats()
	if got := st.WorstFanout(0); got != 3 {
		t.Errorf("WorstFanout(0) = %v, want 3 (the hub subject)", got)
	}
	if got := st.Fanout(0); got >= 3 {
		t.Errorf("Fanout(0) = %v, want < 3: the average must not see the hub", got)
	}
	if got := st.WorstFanout(2); got != 1 {
		t.Errorf("WorstFanout(2) = %v, want 1 (objects are unique)", got)
	}
	if got := (RelStats{}).WorstFanout(0); got != 0 {
		t.Errorf("empty WorstFanout = %v, want 0", got)
	}
	// Degenerate MaxMatch of 0 with triples present is clamped to 1.
	if got := (RelStats{Triples: 5}).WorstFanout(1); got != 1 {
		t.Errorf("zero-MaxMatch WorstFanout = %v, want 1", got)
	}
}

// TestStoreStatsConsistency checks the store-level snapshot against brute
// force after every kind of mutation the Store offers, and that the
// snapshot is only rebuilt when Store.Version advances.
func TestStoreStatsConsistency(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")

	check := func(step string) {
		t.Helper()
		snap := s.Stats()
		if snap.Version != s.Version() {
			t.Fatalf("%s: snapshot version %d != store version %d", step, snap.Version, s.Version())
		}
		for _, name := range s.RelationNames() {
			want := recount(s.Relation(name))
			if got := snap.Rel(name); got != want {
				t.Fatalf("%s: stats for %s = %+v, want %+v", step, name, got, want)
			}
		}
	}

	check("initial")
	refreshes := s.StatsRefreshes()
	if refreshes == 0 {
		t.Fatal("Stats did not count its first refresh")
	}

	// Unchanged store: the snapshot is served from cache.
	s.Stats()
	s.Stats()
	if got := s.StatsRefreshes(); got != refreshes {
		t.Fatalf("refreshes = %d after repeated Stats on unchanged store, want %d", got, refreshes)
	}

	// Add bumps the version and invalidates.
	s.Add("E", "c", "q", "d")
	check("after Add")
	if got := s.StatsRefreshes(); got != refreshes+1 {
		t.Fatalf("refreshes = %d after Add, want %d", got, refreshes+1)
	}

	// AddTriple through the store likewise.
	s.AddTriple("F", Triple{s.Intern("a"), s.Intern("q"), s.Intern("d")})
	check("after AddTriple")

	// SetValue advances the version too: value-distribution changes may
	// matter to value-condition selectivity even though triple counts are
	// unchanged, and one uniform rule ("any store mutation invalidates")
	// is simpler than tracking which mutations could matter.
	before := s.Stats()
	s.SetValue("a", V("v"))
	after := s.Stats()
	if after.Version == before.Version {
		t.Fatal("SetValue did not advance the snapshot version")
	}
	check("after SetValue")
}

// TestStoreStatsClone: a cloned store computes its own statistics and
// mutating the clone does not disturb the original's snapshot.
func TestStoreStatsClone(t *testing.T) {
	s := NewStore()
	s.Add("E", "a", "p", "b")
	orig := s.Stats()

	c := s.Clone()
	c.Add("E", "b", "p", "c")
	if got := c.Stats().Rel("E").Triples; got != 2 {
		t.Fatalf("clone stats = %d triples, want 2", got)
	}
	if got := s.Stats(); got.Rel("E").Triples != orig.Rel("E").Triples {
		t.Fatalf("original stats changed after clone mutation: %+v", got)
	}
}
