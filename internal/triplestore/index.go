package triplestore

import (
	"sort"
	"sync"
)

// Perm identifies one of the three permutation orders in which a relation
// can be materialized as a sorted triple slice. Each order serves point
// lookups on a different leading position: SPO answers "all triples with
// subject s", POS "all triples with predicate p", OSP "all triples with
// object o". These are the classic RDF access paths (cf. Hexastore/RDF-3X);
// three of the six permutations suffice for single-position probes, which
// is all the TriAL join conditions require.
type Perm int

const (
	// SPO orders by (subject, predicate, object) — probe on position 1.
	SPO Perm = iota
	// POS orders by (predicate, object, subject) — probe on position 2.
	POS
	// OSP orders by (object, subject, predicate) — probe on position 3.
	OSP
	numPerms
)

// PermFor returns the permutation whose leading component is the given
// triple position (0, 1 or 2).
func PermFor(pos int) Perm {
	switch pos {
	case 0:
		return SPO
	case 1:
		return POS
	default:
		return OSP
	}
}

// key returns t reordered so that the permutation's leading position comes
// first; comparison of keys realizes the permutation's sort order.
func (p Perm) key(t Triple) Triple {
	switch p {
	case SPO:
		return t
	case POS:
		return Triple{t[1], t[2], t[0]}
	default: // OSP
		return Triple{t[2], t[0], t[1]}
	}
}

// Lead returns the triple position (0..2) the permutation sorts first.
func (p Perm) Lead() int {
	switch p {
	case SPO:
		return 0
	case POS:
		return 1
	default:
		return 2
	}
}

func (p Perm) String() string {
	switch p {
	case SPO:
		return "SPO"
	case POS:
		return "POS"
	default:
		return "OSP"
	}
}

// maxIndexTail bounds the overlay of an incrementally maintained index:
// once the tail outgrows it, the next insertion merges tail and base into
// one sorted run. The bound keeps point lookups at two binary searches
// over well-sized runs while amortizing the O(n) merge over many inserts.
const maxIndexTail = 256

// Index is a materialized access path over a relation: triples sorted in
// one permutation order, supporting binary-search point lookups on the
// permutation's leading position. An Index value is immutable — mutation
// produces a new Index via withAdded, which appends into a small sorted
// overlay (the tail) and merges it into the base run when it outgrows
// maxIndexTail. Relations cache one Index per permutation, extend it
// incrementally on Add, and drop it on Remove.
//
// An Index may instead be source-backed (src != nil): probes delegate to
// a RunSource that decodes only the storage blocks each call touches,
// so a cold (unmaterialized) relation still answers Match and Leads
// without its full content ever entering memory. Source-backed indexes
// are created fresh per Relation.Index call while the relation is cold
// and are never mutated.
type Index struct {
	perm    Perm
	triples []Triple  // base run, sorted by perm.key order
	tail    []Triple  // recent additions, also sorted by perm.key order
	src     RunSource // non-nil ⇒ delegate probes to storage

	// leads caches the distinct leading-position values (Leads). The
	// index is immutable, so the lazy build runs once per Index value;
	// the sync.Once makes that safe under concurrent readers.
	leadsOnce sync.Once
	leads     []ID
}

// BuildIndex materializes the access path for r in the given permutation.
// Prefer Relation.Index, which caches.
func BuildIndex(r *Relation, perm Perm) *Index {
	if r.set == nil && r.src != nil { // source-backed: decode in permutation order
		return &Index{perm: perm, triples: r.src.Run(perm)}
	}
	if r.set == nil { // run-backed: copy the sorted view, re-sort for the permutation
		ts := append([]Triple(nil), r.sorted...)
		if perm == SPO {
			return &Index{perm: perm, triples: ts} // already in SPO key order
		}
		sort.Slice(ts, func(i, j int) bool { return perm.key(ts[i]).Less(perm.key(ts[j])) })
		return &Index{perm: perm, triples: ts}
	}
	ts := make([]Triple, 0, len(r.set))
	for t := range r.set {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return perm.key(ts[i]).Less(perm.key(ts[j])) })
	return &Index{perm: perm, triples: ts}
}

// IndexTriples materializes an access path over an arbitrary triple
// slice (which is not modified). The sharded executor uses it to index
// runtime partitions of derived relations — star bases and other
// intermediate results that no Relation caches an index for.
func IndexTriples(ts []Triple, perm Perm) *Index {
	sorted := append([]Triple(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return perm.key(sorted[i]).Less(perm.key(sorted[j])) })
	return &Index{perm: perm, triples: sorted}
}

// withAdded returns a new Index that additionally covers t (which must
// not already be present). The receiver is not modified, so an Index
// captured by a snapshot or an in-flight query stays consistent.
func (ix *Index) withAdded(t Triple) *Index {
	if ix.src != nil {
		// Source-backed indexes are never cached on the relation, and the
		// mutation path materializes (ensureSet) before touching indexes —
		// reaching here means the residency seam is wired wrong.
		panic("triplestore: withAdded on a source-backed index")
	}
	key := ix.perm.key(t)
	pos := sort.Search(len(ix.tail), func(i int) bool { return !ix.perm.key(ix.tail[i]).Less(key) })
	tail := make([]Triple, 0, len(ix.tail)+1)
	tail = append(tail, ix.tail[:pos]...)
	tail = append(tail, t)
	tail = append(tail, ix.tail[pos:]...)
	if len(tail) <= maxIndexTail {
		return &Index{perm: ix.perm, triples: ix.triples, tail: tail}
	}
	// Overlay full: linear-merge the two sorted runs into a new base.
	return &Index{perm: ix.perm, triples: mergeRuns(ix.perm, ix.triples, tail)}
}

// mergeRuns linearly merges two runs sorted in perm.key order.
func mergeRuns(perm Perm, a, b []Triple) []Triple {
	out := make([]Triple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if perm.key(a[i]).Less(perm.key(b[j])) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Perm returns the index's permutation order.
func (ix *Index) Perm() Perm { return ix.perm }

// Len returns the number of indexed triples.
func (ix *Index) Len() int {
	if ix.src != nil {
		return ix.src.Len()
	}
	return len(ix.triples) + len(ix.tail)
}

// Triples returns all indexed triples in permutation order. When the
// index carries no overlay the base run is returned directly (do not
// modify); otherwise base and tail are merged into a fresh slice. On a
// source-backed index each call decodes afresh — callers that iterate
// repeatedly should hold the result.
func (ix *Index) Triples() []Triple {
	if ix.src != nil {
		return ix.src.Run(ix.perm)
	}
	if len(ix.tail) == 0 {
		return ix.triples
	}
	return mergeRuns(ix.perm, ix.triples, ix.tail)
}

// matchRun returns the subrange of the sorted run ts whose leading
// component equals id.
func matchRun(ts []Triple, lead int, id ID) []Triple {
	lo := sort.Search(len(ts), func(i int) bool { return ts[i][lead] >= id })
	hi := lo
	for hi < len(ts) && ts[hi][lead] == id {
		hi++
	}
	return ts[lo:hi]
}

// Match returns the triples whose leading-position component equals id.
// When all matches live in the base run the result is a subslice of the
// index (do not modify); matches spanning the overlay are concatenated
// into a fresh slice. The lookup is O(log n) plus the match count.
func (ix *Index) Match(id ID) []Triple {
	if ix.src != nil {
		return ix.src.Match(ix.perm, id)
	}
	lead := ix.perm.Lead()
	base := matchRun(ix.triples, lead, id)
	if len(ix.tail) == 0 {
		return base
	}
	extra := matchRun(ix.tail, lead, id)
	if len(extra) == 0 {
		return base
	}
	if len(base) == 0 {
		return extra
	}
	out := make([]Triple, 0, len(base)+len(extra))
	out = append(out, base...)
	out = append(out, extra...)
	return out
}

// Leads returns the distinct values of the permutation's leading
// position, in ascending ID order — the trie's first level, which the
// engine's leapfrog triejoin intersects across relations and the merge
// join uses to drive group-wise probing. The slice is computed on first
// use, cached on the (immutable) index, and must not be modified.
func (ix *Index) Leads() []ID {
	ix.leadsOnce.Do(func() {
		if ix.src != nil {
			ix.leads = ix.src.Leads(ix.perm)
			return
		}
		ts := ix.Triples()
		lead := ix.perm.Lead()
		out := make([]ID, 0, len(ts)/2+1)
		for i, t := range ts {
			if i == 0 || t[lead] != ts[i-1][lead] {
				out = append(out, t[lead])
			}
		}
		ix.leads = out
	})
	return ix.leads
}

// MatchCount returns len(Match(id)) without concatenating overlay matches.
func (ix *Index) MatchCount(id ID) int {
	if ix.src != nil {
		return len(ix.src.Match(ix.perm, id))
	}
	lead := ix.perm.Lead()
	n := len(matchRun(ix.triples, lead, id))
	if len(ix.tail) > 0 {
		n += len(matchRun(ix.tail, lead, id))
	}
	return n
}

// Index returns the relation's access path for the given permutation,
// building and caching it on first use. Store-mediated additions extend
// the cached index incrementally (see Relation.Add); removals drop it.
//
// While a relation is source-backed and its residency policy forbids
// retention, each call returns a fresh uncached delegating index: probes
// go straight to storage and nothing sticks to the heap. Once the policy
// promotes the relation, the next call materializes and caches as usual.
func (r *Relation) Index(perm Perm) *Index {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix := r.idx[perm]; ix != nil {
		return ix
	}
	if r.set == nil && r.src != nil {
		if !r.src.Retain(false) {
			return &Index{perm: perm, src: r.src}
		}
		ix := &Index{perm: perm, triples: r.src.Run(perm)}
		r.idx[perm] = ix
		return ix
	}
	ix := BuildIndex(r, perm)
	r.idx[perm] = ix
	return ix
}
