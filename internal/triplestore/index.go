package triplestore

import "sort"

// Perm identifies one of the three permutation orders in which a relation
// can be materialized as a sorted triple slice. Each order serves point
// lookups on a different leading position: SPO answers "all triples with
// subject s", POS "all triples with predicate p", OSP "all triples with
// object o". These are the classic RDF access paths (cf. Hexastore/RDF-3X);
// three of the six permutations suffice for single-position probes, which
// is all the TriAL join conditions require.
type Perm int

const (
	// SPO orders by (subject, predicate, object) — probe on position 1.
	SPO Perm = iota
	// POS orders by (predicate, object, subject) — probe on position 2.
	POS
	// OSP orders by (object, subject, predicate) — probe on position 3.
	OSP
	numPerms
)

// PermFor returns the permutation whose leading component is the given
// triple position (0, 1 or 2).
func PermFor(pos int) Perm {
	switch pos {
	case 0:
		return SPO
	case 1:
		return POS
	default:
		return OSP
	}
}

// key returns t reordered so that the permutation's leading position comes
// first; comparison of keys realizes the permutation's sort order.
func (p Perm) key(t Triple) Triple {
	switch p {
	case SPO:
		return t
	case POS:
		return Triple{t[1], t[2], t[0]}
	default: // OSP
		return Triple{t[2], t[0], t[1]}
	}
}

// Lead returns the triple position (0..2) the permutation sorts first.
func (p Perm) Lead() int {
	switch p {
	case SPO:
		return 0
	case POS:
		return 1
	default:
		return 2
	}
}

func (p Perm) String() string {
	switch p {
	case SPO:
		return "SPO"
	case POS:
		return "POS"
	default:
		return "OSP"
	}
}

// Index is a materialized access path over a relation: all triples sorted
// in one permutation order, supporting binary-search point lookups on the
// permutation's leading position. Indexes are immutable snapshots; the
// relation caches one per permutation and drops them on mutation.
type Index struct {
	perm    Perm
	triples []Triple // sorted by perm.key order
}

// BuildIndex materializes the access path for r in the given permutation.
// Prefer Relation.Index, which caches.
func BuildIndex(r *Relation, perm Perm) *Index {
	ts := make([]Triple, 0, r.Len())
	for t := range r.set {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return perm.key(ts[i]).Less(perm.key(ts[j])) })
	return &Index{perm: perm, triples: ts}
}

// Perm returns the index's permutation order.
func (ix *Index) Perm() Perm { return ix.perm }

// Len returns the number of indexed triples.
func (ix *Index) Len() int { return len(ix.triples) }

// Triples returns all triples in permutation order. Callers must not
// modify the returned slice.
func (ix *Index) Triples() []Triple { return ix.triples }

// Match returns the triples whose leading-position component equals id, as
// a subslice of the index (do not modify). The lookup is O(log n) plus the
// match count.
func (ix *Index) Match(id ID) []Triple {
	lead := ix.perm.Lead()
	lo := sort.Search(len(ix.triples), func(i int) bool { return ix.triples[i][lead] >= id })
	hi := lo
	for hi < len(ix.triples) && ix.triples[hi][lead] == id {
		hi++
	}
	return ix.triples[lo:hi]
}

// MatchCount returns len(Match(id)) without materializing anything extra.
func (ix *Index) MatchCount(id ID) int { return len(ix.Match(id)) }

// Index returns the relation's access path for the given permutation,
// building and caching it on first use. The cache is invalidated by Add,
// so repeated probes during a join or fixpoint pay the sort once.
func (r *Relation) Index(perm Perm) *Index {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix := r.idx[perm]; ix != nil {
		return ix
	}
	ix := BuildIndex(r, perm)
	r.idx[perm] = ix
	return ix
}
