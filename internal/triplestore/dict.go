package triplestore

// Dict interns object names to dense IDs. It is the dictionary-encoding
// layer common to triplestore implementations: every URI or node name is
// mapped to a small integer once, and all relations work over integers.
type Dict struct {
	byName map[string]ID
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]ID)}
}

// Intern returns the ID for name, assigning a fresh one if necessary.
func (d *Dict) Intern(name string) ID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := ID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the ID for name, or NoID if it has not been interned.
func (d *Dict) Lookup(name string) ID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	return NoID
}

// Name returns the name interned under id. It panics if id is out of range.
func (d *Dict) Name(id ID) string { return d.names[id] }

// Len returns the number of interned objects.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned names in ID order. The returned slice is
// shared with the dictionary and must not be modified.
func (d *Dict) Names() []string { return d.names }
