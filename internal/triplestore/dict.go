package triplestore

import (
	"fmt"
	"sync"
)

// Dict interns object names to dense IDs. It is the dictionary-encoding
// layer common to triplestore implementations: every URI or node name is
// mapped to a small integer once, and all relations work over integers.
//
// A Dict is append-only — an ID, once assigned, never changes its name —
// and internally synchronized, so it can be shared between a live Store
// and any number of Snapshot views: writers interning new names do not
// disturb readers resolving old ones. Snapshots bound the visible ID
// range themselves (Store.NumObjects, Store.Lookup).
type Dict struct {
	mu     sync.RWMutex
	byName map[string]ID
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]ID)}
}

// Intern returns the ID for name, assigning a fresh one if necessary.
func (d *Dict) Intern(name string) ID {
	id, _ := d.intern(name)
	return id
}

// intern is Intern plus a report of whether the name was new — the store
// uses it to advance its version only on actual growth.
func (d *Dict) intern(name string) (ID, bool) {
	d.mu.RLock()
	id, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return id, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id, false
	}
	id = ID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id, true
}

// appendNew appends names in order, assigning each the next free ID,
// under a single lock acquisition and a single hash per name — the bulk
// path cold-start recovery takes for a checkpoint's dictionary, where
// per-name Intern overhead (lock traffic, duplicate probe, incremental
// map growth) dominates. The names must all be new: a duplicate is
// detected after its slot has been overwritten, so on error the
// dictionary is inconsistent and must be discarded by the caller.
func (d *Dict) appendNew(names []string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.byName) == 0 {
		d.byName = make(map[string]ID, len(names))
	}
	if n := len(d.names) + len(names); cap(d.names) < n {
		grown := make([]string, len(d.names), n)
		copy(grown, d.names)
		d.names = grown
	}
	for _, name := range names {
		d.byName[name] = ID(len(d.names))
		if len(d.byName) != len(d.names)+1 {
			return fmt.Errorf("triplestore: dict: duplicate name %q", name)
		}
		d.names = append(d.names, name)
	}
	return nil
}

// Lookup returns the ID for name, or NoID if it has not been interned.
func (d *Dict) Lookup(name string) ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	return NoID
}

// Name returns the name interned under id. It panics if id is out of range.
func (d *Dict) Name(id ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.names[id]
}

// Len returns the number of interned objects.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Names returns the interned names in ID order. The returned slice must
// not be modified; entries present at call time are stable, but the
// dictionary may grow past them afterwards.
func (d *Dict) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.names[:len(d.names):len(d.names)]
}
