package triplestore

// NDJSONChunkOps exports the ingest chunk bound for tests.
const NDJSONChunkOps = ndjsonChunkOps

// SetNDJSONChunkHook installs an observer over the chunk sizes
// ApplyNDJSON applies, returning a restore function. Tests use it to
// assert the streaming ingest path never buffers more than one chunk.
func SetNDJSONChunkHook(hook func(n int)) (restore func()) {
	prev := ndjsonChunkHook
	ndjsonChunkHook = hook
	return func() { ndjsonChunkHook = prev }
}
