package triplestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Op is one mutation of a batch: inserting or deleting a single triple of
// a named relation. The zero Op with the three object names set is an
// insert.
type Op struct {
	// Delete removes the triple instead of inserting it.
	Delete bool
	// Rel names the target relation. ReadOps fills it with its default
	// when a line omits it; ApplyBatch requires it to be non-empty.
	Rel string
	// S, P, O are the triple's object names.
	S, P, O string
}

// BatchResult summarizes one ApplyBatch call.
type BatchResult struct {
	// Added and Removed count triples actually inserted and deleted;
	// duplicate inserts and absent deletes are no-ops.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Version is the store version after the batch.
	Version uint64 `json:"version"`
}

// ApplyBatch applies the ops as one atomic batch: writers and snapshots
// are excluded for its duration, and the version advances at most once —
// per batch, not per op — so version-keyed caches (statistics, plans, the
// engine's universe) are invalidated once however large the ingest. Ops
// with an empty relation name are rejected. A batch that changes nothing
// (all duplicates and absent deletes) leaves the version untouched.
func (s *Store) ApplyBatch(ops []Op) (BatchResult, error) {
	return s.ApplyBatchFunc(ops, nil)
}

// ApplyBatchFunc is ApplyBatch with a per-op effect callback: for every op
// that actually changed relation membership (an insert that was not a
// duplicate, a delete that found its triple), effect is invoked with the
// op and the resolved triple, in batch order, before the batch's version
// bump. No-op inserts and absent deletes do not fire it. The callback runs
// under the store's write lock, so it observes exactly the state the batch
// produces and must not call back into the store; the durable storage
// engine uses it to maintain its flush overlay (which triples the next
// segment must contain) without diffing snapshots.
func (s *Store) ApplyBatchFunc(ops []Op, effect func(op Op, t Triple)) (BatchResult, error) {
	s.ensureMutable()
	for i, op := range ops {
		if op.Rel == "" {
			return BatchResult{}, fmt.Errorf("triplestore: batch op %d: empty relation name", i)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var res BatchResult
	changed := false
	for _, op := range ops {
		if op.Delete {
			si, pi, oi := s.dict.Lookup(op.S), s.dict.Lookup(op.P), s.dict.Lookup(op.O)
			if si == NoID || pi == NoID || oi == NoID {
				continue
			}
			t := Triple{si, pi, oi}
			r, ok := s.rels[op.Rel]
			if !ok || !r.Has(t) {
				continue
			}
			s.mutableRelLocked(op.Rel).Remove(t)
			res.Removed++
			changed = true
			if effect != nil {
				effect(op, t)
			}
			continue
		}
		si, new1 := s.internLocked(op.S)
		pi, new2 := s.internLocked(op.P)
		oi, new3 := s.internLocked(op.O)
		changed = changed || new1 || new2 || new3
		t := Triple{si, pi, oi}
		if r, ok := s.rels[op.Rel]; ok && r.Has(t) {
			continue // duplicate: don't copy-on-write a frozen relation
		}
		if s.mutableRelLocked(op.Rel).Add(t) {
			res.Added++
			changed = true
			if effect != nil {
				effect(op, t)
			}
		}
	}
	if changed {
		s.bumpVersion()
	}
	s.adds.Add(uint64(res.Added))
	s.removes.Add(uint64(res.Removed))
	s.batches.Add(1)
	res.Version = s.version.Load()
	return res, nil
}

// batchLine is the NDJSON wire form of an Op.
type batchLine struct {
	Op  string `json:"op,omitempty"` // "", "add" or "delete"
	Rel string `json:"rel,omitempty"`
	S   string `json:"s"`
	P   string `json:"p"`
	O   string `json:"o"`
}

// OpReader incrementally parses a stream of mutations in the NDJSON batch
// format: one JSON object per line, {"s":..,"p":..,"o":..} plus optional
// "rel" (defaulting to the reader's default relation) and optional "op"
// ("add", the default, or "delete"). Blank lines are skipped. A single
// JSON object without a trailing newline is a valid one-op stream, so
// single-triple request bodies parse through the same path as bulk loads.
//
// Unlike ReadOps, an OpReader never materializes the whole stream: Next
// hands out ops in bounded chunks, so a million-line ingest holds one
// chunk of parsed ops (plus one line of raw bytes) in memory at a time.
type OpReader struct {
	sc         *bufio.Scanner
	defaultRel string
	line       int
	buf        []Op
	err        error // sticky: parse or transport error, or io.EOF
}

// NewOpReader returns an OpReader over r. Lines that omit "rel" resolve to
// defaultRel; an empty defaultRel makes such lines an error.
func NewOpReader(r io.Reader, defaultRel string) *OpReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &OpReader{sc: sc, defaultRel: defaultRel}
}

// Next parses and returns up to max ops (at least one, unless the stream
// is exhausted or errors). At the end of the stream it returns io.EOF,
// possibly alongside a final short chunk. The returned slice is reused by
// the next call — callers must consume or copy it first. Errors are
// sticky; transport-level causes (e.g. an http.MaxBytesError from a capped
// request body) are wrapped with %w for classification.
func (or *OpReader) Next(max int) ([]Op, error) {
	if or.err != nil {
		return nil, or.err
	}
	if cap(or.buf) < max {
		or.buf = make([]Op, 0, max)
	}
	or.buf = or.buf[:0]
	for len(or.buf) < max {
		if !or.sc.Scan() {
			if err := or.sc.Err(); err != nil {
				or.err = fmt.Errorf("triplestore: reading batch: %w", err)
			} else {
				or.err = io.EOF
			}
			return or.buf, or.err
		}
		or.line++
		text := strings.TrimSpace(or.sc.Text())
		if text == "" {
			continue
		}
		var bl batchLine
		if err := json.Unmarshal([]byte(text), &bl); err != nil {
			or.err = fmt.Errorf("triplestore: batch line %d: %v", or.line, err)
			return or.buf, or.err
		}
		op := Op{Rel: bl.Rel, S: bl.S, P: bl.P, O: bl.O}
		switch bl.Op {
		case "", "add":
		case "delete":
			op.Delete = true
		default:
			or.err = fmt.Errorf("triplestore: batch line %d: unknown op %q (want add or delete)", or.line, bl.Op)
			return or.buf, or.err
		}
		if op.S == "" || op.P == "" || op.O == "" {
			or.err = fmt.Errorf("triplestore: batch line %d: s, p and o must all be non-empty", or.line)
			return or.buf, or.err
		}
		if op.Rel == "" {
			op.Rel = or.defaultRel
		}
		if op.Rel == "" {
			or.err = fmt.Errorf("triplestore: batch line %d: no relation (no rel field and no default)", or.line)
			return or.buf, or.err
		}
		or.buf = append(or.buf, op)
	}
	return or.buf, nil
}

// ReadOps parses a complete batch of mutations from NDJSON (see OpReader
// for the format) and returns it materialized. Callers that need
// all-or-nothing semantics over a bounded body (the server's /v1/triples
// handler, capped at 32 MiB) use this; bulk loaders stream through
// OpReader or ApplyNDJSON instead.
func ReadOps(r io.Reader, defaultRel string) ([]Op, error) {
	or := NewOpReader(r, defaultRel)
	var ops []Op
	for {
		chunk, err := or.Next(ndjsonChunkOps)
		ops = append(ops, chunk...)
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// ndjsonChunkOps bounds the number of parsed ops ApplyNDJSON buffers
// between ApplyBatch calls: the memory high-water mark of an arbitrarily
// large ingest is one chunk of ops plus one line of raw input, not the
// whole stream.
const ndjsonChunkOps = 4096

// ndjsonChunkHook, when non-nil, observes the size of every chunk
// ApplyNDJSON applies. Tests use it to assert the buffering bound.
var ndjsonChunkHook func(n int)

// ApplyNDJSON streams a batch from r (OpReader format) into the store. Ops
// are applied in bounded chunks — each chunk one atomic ApplyBatch — so
// ingest memory stays flat however large the stream. Atomicity is
// therefore per chunk, not per stream: a parse error mid-stream returns
// the error with all prior chunks applied (and counted in the result).
// Callers needing all-or-nothing over an entire body should ReadOps +
// ApplyBatch instead.
func (s *Store) ApplyNDJSON(r io.Reader, defaultRel string) (BatchResult, error) {
	or := NewOpReader(r, defaultRel)
	var total BatchResult
	for {
		ops, err := or.Next(ndjsonChunkOps)
		if len(ops) > 0 {
			if ndjsonChunkHook != nil {
				ndjsonChunkHook(len(ops))
			}
			res, aerr := s.ApplyBatch(ops)
			total.Added += res.Added
			total.Removed += res.Removed
			total.Version = res.Version
			if aerr != nil {
				return total, aerr
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}
