package triplestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Op is one mutation of a batch: inserting or deleting a single triple of
// a named relation. The zero Op with the three object names set is an
// insert.
type Op struct {
	// Delete removes the triple instead of inserting it.
	Delete bool
	// Rel names the target relation. ReadOps fills it with its default
	// when a line omits it; ApplyBatch requires it to be non-empty.
	Rel string
	// S, P, O are the triple's object names.
	S, P, O string
}

// BatchResult summarizes one ApplyBatch call.
type BatchResult struct {
	// Added and Removed count triples actually inserted and deleted;
	// duplicate inserts and absent deletes are no-ops.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Version is the store version after the batch.
	Version uint64 `json:"version"`
}

// ApplyBatch applies the ops as one atomic batch: writers and snapshots
// are excluded for its duration, and the version advances at most once —
// per batch, not per op — so version-keyed caches (statistics, plans, the
// engine's universe) are invalidated once however large the ingest. Ops
// with an empty relation name are rejected. A batch that changes nothing
// (all duplicates and absent deletes) leaves the version untouched.
func (s *Store) ApplyBatch(ops []Op) (BatchResult, error) {
	s.ensureMutable()
	for i, op := range ops {
		if op.Rel == "" {
			return BatchResult{}, fmt.Errorf("triplestore: batch op %d: empty relation name", i)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var res BatchResult
	changed := false
	for _, op := range ops {
		if op.Delete {
			si, pi, oi := s.dict.Lookup(op.S), s.dict.Lookup(op.P), s.dict.Lookup(op.O)
			if si == NoID || pi == NoID || oi == NoID {
				continue
			}
			t := Triple{si, pi, oi}
			r, ok := s.rels[op.Rel]
			if !ok || !r.Has(t) {
				continue
			}
			s.mutableRelLocked(op.Rel).Remove(t)
			res.Removed++
			changed = true
			continue
		}
		si, new1 := s.internLocked(op.S)
		pi, new2 := s.internLocked(op.P)
		oi, new3 := s.internLocked(op.O)
		changed = changed || new1 || new2 || new3
		t := Triple{si, pi, oi}
		if r, ok := s.rels[op.Rel]; ok && r.Has(t) {
			continue // duplicate: don't copy-on-write a frozen relation
		}
		if s.mutableRelLocked(op.Rel).Add(t) {
			res.Added++
			changed = true
		}
	}
	if changed {
		s.bumpVersion()
	}
	s.adds.Add(uint64(res.Added))
	s.removes.Add(uint64(res.Removed))
	s.batches.Add(1)
	res.Version = s.version.Load()
	return res, nil
}

// batchLine is the NDJSON wire form of an Op.
type batchLine struct {
	Op  string `json:"op,omitempty"` // "", "add" or "delete"
	Rel string `json:"rel,omitempty"`
	S   string `json:"s"`
	P   string `json:"p"`
	O   string `json:"o"`
}

// ReadOps parses a batch of mutations from NDJSON: one JSON object per
// line, {"s":..,"p":..,"o":..} plus optional "rel" (defaulting to
// defaultRel) and optional "op" ("add", the default, or "delete"). Blank
// lines are skipped. A single JSON object without a trailing newline is
// a valid one-op batch, so callers can feed single-triple request bodies
// through the same path as bulk loads.
func ReadOps(r io.Reader, defaultRel string) ([]Op, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ops []Op
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var bl batchLine
		if err := json.Unmarshal([]byte(text), &bl); err != nil {
			return nil, fmt.Errorf("triplestore: batch line %d: %v", line, err)
		}
		op := Op{Rel: bl.Rel, S: bl.S, P: bl.P, O: bl.O}
		switch bl.Op {
		case "", "add":
		case "delete":
			op.Delete = true
		default:
			return nil, fmt.Errorf("triplestore: batch line %d: unknown op %q (want add or delete)", line, bl.Op)
		}
		if op.S == "" || op.P == "" || op.O == "" {
			return nil, fmt.Errorf("triplestore: batch line %d: s, p and o must all be non-empty", line)
		}
		if op.Rel == "" {
			op.Rel = defaultRel
		}
		if op.Rel == "" {
			return nil, fmt.Errorf("triplestore: batch line %d: no relation (no rel field and no default)", line)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		// %w so callers can classify transport-level causes (e.g. an
		// http.MaxBytesError from a capped request body).
		return nil, fmt.Errorf("triplestore: reading batch: %w", err)
	}
	return ops, nil
}

// ApplyNDJSON reads a batch from r (ReadOps format) and applies it as one
// ApplyBatch call.
func (s *Store) ApplyNDJSON(r io.Reader, defaultRel string) (BatchResult, error) {
	ops, err := ReadOps(r, defaultRel)
	if err != nil {
		return BatchResult{}, err
	}
	return s.ApplyBatch(ops)
}
