package triplestore

import "strings"

// Field is one component of a data value. Fields may be null, as in the
// social-network example of §2.3 where user entities have null connection
// attributes and vice versa.
type Field struct {
	Str  string
	Null bool
}

// F returns a non-null field holding s.
func F(s string) Field { return Field{Str: s} }

// Null returns a null field.
func Null() Field { return Field{Null: true} }

// Equal reports whether two fields are equal. Following SQL-style
// semantics would make null ≠ null; the paper instead treats ρ as a total
// function into a value domain, so two null fields are equal here.
func (f Field) Equal(g Field) bool {
	if f.Null || g.Null {
		return f.Null == g.Null
	}
	return f.Str == g.Str
}

func (f Field) String() string {
	if f.Null {
		return "⊥"
	}
	return f.Str
}

// Value is the data value ρ(o) of an object: a tuple of fields. The paper
// uses a single value "to simplify notations" and notes that tuples (with
// per-component comparison relations ∼i) change nothing; we support tuples
// directly. A nil Value denotes an object with no assigned value; all nil
// values compare equal to each other and unequal to any non-nil value.
type Value []Field

// V builds a value from non-null string fields.
func V(fields ...string) Value {
	v := make(Value, len(fields))
	for i, s := range fields {
		v[i] = F(s)
	}
	return v
}

// Equal reports whether v and w are equal as tuples.
func (v Value) Equal(w Value) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if !v[i].Equal(w[i]) {
			return false
		}
	}
	return true
}

// ComponentEqual reports whether component i of v equals component i of w.
// Missing components (index out of range) compare as null.
func (v Value) ComponentEqual(w Value, i int) bool {
	return v.component(i).Equal(w.component(i))
}

func (v Value) component(i int) Field {
	if i < 0 || i >= len(v) {
		return Null()
	}
	return v[i]
}

// Key returns a canonical string form usable as a map key. Distinct values
// have distinct keys.
func (v Value) Key() string {
	if v == nil {
		return "\x00nil"
	}
	var b strings.Builder
	for _, f := range v {
		if f.Null {
			b.WriteString("\x01")
		} else {
			b.WriteString("\x02")
			b.WriteString(f.Str)
		}
		b.WriteByte(0)
	}
	return b.String()
}

func (v Value) String() string {
	if v == nil {
		return "⊥"
	}
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}
