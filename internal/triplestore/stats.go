package triplestore

import "sync"

// RelStats summarizes one relation for cost-based query optimization:
// its cardinality and the number of distinct objects in each of the
// three positions. The per-position distinct counts estimate the bucket
// size of a single-position index probe (|R| / Distinct[i]) far more
// accurately than the global |O| bound: a relation whose middle position
// holds only a handful of predicates has large POS buckets, and the
// planner should know.
type RelStats struct {
	// Triples is the relation's cardinality |R|.
	Triples int `json:"triples"`
	// Distinct counts the distinct objects per position: subjects,
	// predicates, objects in RDF terms.
	Distinct [3]int `json:"distinct"`
	// MaxMatch is the largest number of triples sharing one value at
	// each position — the worst-case bucket of a point probe there.
	// Fanout is the average bucket; the spread between the two is the
	// skew signal the planner's worst-case join costing keys off: on a
	// power-law graph MaxMatch dwarfs Fanout, and a binary join plan
	// that probes through the heavy value pays MaxMatch, not Fanout.
	MaxMatch [3]int `json:"max_match"`
}

// Fanout estimates how many triples of the relation match a point probe
// on the given position (0..2): |R| divided by the position's distinct
// count, at least 1 for nonempty relations. It is the expected bucket
// size under a uniform distribution — exact when the relation is a key
// on that position.
func (st RelStats) Fanout(pos int) float64 {
	if st.Triples == 0 {
		return 0
	}
	d := st.Distinct[pos]
	if d < 1 {
		d = 1
	}
	f := float64(st.Triples) / float64(d)
	if f < 1 {
		return 1
	}
	return f
}

// WorstFanout is the worst-case analogue of Fanout: the largest bucket a
// point probe on the position can hit (MaxMatch), at least 1 for
// nonempty relations. The planner uses it to bound a binary join plan's
// intermediate size from above when weighing it against the AGM bound
// of a worst-case-optimal plan.
func (st RelStats) WorstFanout(pos int) float64 {
	if st.Triples == 0 {
		return 0
	}
	m := st.MaxMatch[pos]
	if m < 1 {
		m = 1
	}
	return float64(m)
}

// Stats computes (and caches) the relation's statistics. Like the sorted
// view and the permutation indexes, the cached statistics are dropped on
// mutation, so they are always consistent with the current contents; the
// recomputation is a single O(|R|) pass. Safe for concurrent readers.
func (r *Relation) Stats() RelStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stats != nil {
		return *r.stats
	}
	n := r.Len()
	var counts [3]map[ID]int
	for i := range counts {
		counts[i] = make(map[ID]int, n)
	}
	count := func(t Triple) {
		counts[0][t[0]]++
		counts[1][t[1]]++
		counts[2][t[2]]++
	}
	if r.set == nil { // run- or source-backed: the sorted view is the content
		for _, t := range r.sortedLocked() {
			count(t)
		}
	} else {
		for t := range r.set {
			count(t)
		}
	}
	st := RelStats{
		Triples:  n,
		Distinct: [3]int{len(counts[0]), len(counts[1]), len(counts[2])},
	}
	for i, c := range counts {
		for _, n := range c {
			if n > st.MaxMatch[i] {
				st.MaxMatch[i] = n
			}
		}
	}
	r.stats = &st
	return st
}

// StoreStats is a snapshot of the statistics of every relation in a
// store, taken at one store version. The optimizer and the physical
// planner consume it; the server's /stats endpoint exposes the refresh
// counter so operators can see when statistics were rebuilt.
type StoreStats struct {
	// Version is the Store.Version the snapshot was computed at.
	Version uint64 `json:"version"`
	// Relations maps each relation name to its statistics.
	Relations map[string]RelStats `json:"relations"`
}

// Rel returns the statistics for the named relation (the zero RelStats
// if the relation does not exist in the snapshot).
func (ss StoreStats) Rel(name string) RelStats { return ss.Relations[name] }

// statsCache is the store-level statistics snapshot, guarded by its own
// mutex so concurrent readers (engines planning queries in parallel)
// can share one snapshot without racing on the lazy rebuild.
type statsCache struct {
	mu        sync.Mutex
	snap      *StoreStats
	refreshes uint64
}

// Stats returns a statistics snapshot for the store's current version,
// recomputing it only when the store has been mutated since the last
// snapshot (Store.Version advanced). The returned value is shared and
// must be treated as read-only.
func (s *Store) Stats() StoreStats {
	s.statsCache.mu.Lock()
	defer s.statsCache.mu.Unlock()
	v := s.Version()
	if s.statsCache.snap != nil && s.statsCache.snap.Version == v {
		return *s.statsCache.snap
	}
	// Hold the store's reader lock (live stores only) for the whole
	// recomputation: Relation.Stats iterates each relation's triple set,
	// which store-mediated writers mutate under the writer lock.
	if !s.frozen {
		s.mu.RLock()
	}
	snap := StoreStats{Version: v, Relations: make(map[string]RelStats, len(s.rels))}
	for _, name := range s.relNames {
		snap.Relations[name] = s.rels[name].Stats()
	}
	if !s.frozen {
		s.mu.RUnlock()
	}
	s.statsCache.snap = &snap
	s.statsCache.refreshes++
	return snap
}

// StatsRefreshes reports how many times the store-level statistics
// snapshot has been rebuilt (i.e. how often Stats found its cache stale).
func (s *Store) StatsRefreshes() uint64 {
	s.statsCache.mu.Lock()
	defer s.statsCache.mu.Unlock()
	return s.statsCache.refreshes
}
