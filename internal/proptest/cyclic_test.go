package proptest

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// cyclicStore draws a store for the cyclic-join suite: the standard
// differential shapes plus small power-law graphs, whose hub nodes give
// the skew-aware cost model something to choose on.
func cyclicStore(t *testing.T, rng *rand.Rand) (*triplestore.Store, string) {
	if rng.Intn(3) == 0 {
		g := genstore.PowerLawGraph(rng.Int63(), 20+rng.Intn(30), 80+rng.Intn(120))
		s, err := g.Build()
		if err != nil {
			t.Fatalf("building %s: %v", g.Desc, err)
		}
		return s, g.Desc
	}
	return RandomStore(rng)
}

// TestCyclicJoinEquivalence is the worst-case-optimal tier's property:
// over well past 500 random (store, cyclic join) pairs — triangles and
// diamonds with randomized outputs and occasional residual inequalities —
// every route returns byte-identical results. The routes include the
// forced leapfrog and sort-merge physical operators, the binary-only
// policy they are checked against, and the partition-parallel sharded
// engines (flat and forced-leapfrog), so the new operators are pinned to
// the reference Evaluator on exactly the query shapes they exist for.
func TestCyclicJoinEquivalence(t *testing.T) {
	const nStores, perStore = 25, 21
	rng := rand.New(rand.NewSource(97531))
	rels := []string{genstore.RelE}
	pairs, leapfrogPlans := 0, 0
	for si := 0; si < nStores; si++ {
		s, label := cyclicStore(t, rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		lf := engine.New(s, engine.WithJoinPolicy(engine.JoinForceLeapfrog))
		for i := 0; i < perStore; i++ {
			x := genstore.RandomCyclicJoin(rng, rels)
			if CheckExpr(t, s, x, routes) {
				pairs++
			}
			if plan, err := lf.Explain(x); err == nil && strings.Contains(plan, "leapfrog") {
				leapfrogPlans++
			}
			if t.Failed() {
				t.Fatalf("divergence on store %s, expr %s", label, x)
			}
		}
	}
	if pairs < 500 {
		t.Errorf("only %d successfully evaluated cyclic pairs, want >= 500", pairs)
	}
	if leapfrogPlans < pairs/2 {
		t.Errorf("forced policy planned leapfrog for only %d of %d pairs", leapfrogPlans, pairs)
	}
	t.Logf("checked %d cyclic (store, expression) pairs, %d planned as leapfrog",
		pairs, leapfrogPlans)
}

// triangleExpr is the canonical cyclic query: E(a,·,b) ∧ E(b,·,c) ∧
// E(c,·,a), written as the binary cascade
// join[1,2,3; 3=1′ ∧ 1=3′](join[1,3,3′; 3=1′](E, E), E).
func triangleExpr(rel string) trial.Expr {
	eq := func(a, b trial.Pos) trial.ObjAtom { return trial.Eq(trial.P(a), trial.P(b)) }
	path := trial.MustJoin(trial.R(rel), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{eq(trial.L3, trial.R1)}}, trial.R(rel))
	return trial.MustJoin(path, [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{eq(trial.L3, trial.R1), eq(trial.L1, trial.R3)}}, trial.R(rel))
}

// TestScaleDifferential100k is the seeded scale smoke test: a 100k-edge
// power-law social store, built through the NDJSON bulk-ingest path, with
// the triangle query checked byte-identical across the binary-only
// cascade (the oracle at this scale — the reference Evaluator is
// quadratic and unusable here), the auto planner, the forced leapfrog and
// merge operators, and a sharded engine. Fully deterministic: seed 42.
func TestScaleDifferential100k(t *testing.T) {
	if testing.Short() {
		t.Skip("scale differential skipped in -short mode")
	}
	g := genstore.PowerLawSocial(42, 30_000, 100_000)
	s, err := g.Build()
	if err != nil {
		t.Fatalf("building %s: %v", g.Desc, err)
	}
	if n := s.Relation(genstore.RelE).Len(); n < 90_000 {
		t.Fatalf("store has %d triples, want ~100k", n)
	}
	routes := []Route{
		{Label: "engine-nowco", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinNoWCO)).Eval},
		{Label: "engine", Eval: engine.New(s).Eval},
		{Label: "engine-leapfrog", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinForceLeapfrog)).Eval},
		{Label: "engine-merge", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinForceMerge)).Eval},
		{Label: "sharded-4", Eval: engine.NewSharded(triplestore.Shard(s, 4)).Eval},
	}
	tri := triangleExpr(genstore.RelE)
	want, err := routes[0].Eval(tri)
	if err != nil {
		t.Fatalf("%s: %v", routes[0].Label, err)
	}
	if want.Len() == 0 {
		t.Fatalf("triangle query returned no rows on %s; the smoke test is vacuous", g.Desc)
	}
	wantText := s.FormatRelation(want)
	for _, r := range routes[1:] {
		got, err := r.Eval(tri)
		if err != nil {
			t.Fatalf("%s: %v", r.Label, err)
		}
		if s.FormatRelation(got) != wantText {
			t.Errorf("%s diverges from %s: %d vs %d triangles",
				r.Label, routes[0].Label, got.Len(), want.Len())
		}
	}
	t.Logf("%s: %d triangles agree across %d routes", g.Desc, want.Len(), len(routes))
}
