package proptest

import (
	"flag"
	"math/rand"
	"testing"

	"repro/internal/genstore"
	"repro/internal/optimizer"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// shardsFlag lets CI sweep the shard count over the whole differential
// suite: `go test -shards=16 ./internal/proptest`. Unset (0), the suite
// covers a small default spread.
var shardsFlag = flag.Int("shards", 0, "run the sharded differential suites with exactly this shard count (0 = default spread)")

func shardCounts() []int {
	if *shardsFlag > 0 {
		return []int{*shardsFlag}
	}
	return []int{2, 5}
}

// exprConfigs cycles the generator through every expression fragment:
// equality-only TriAL=, general conditions, data-value atoms, Kleene
// stars, and (domain permitting) the universe primitive.
func exprConfigs() []genstore.ExprOptions {
	rels := []string{genstore.RelE}
	return []genstore.ExprOptions{
		{Relations: rels, MaxDepth: 3, EqualityOnly: true},
		{Relations: rels, MaxDepth: 3},
		{Relations: rels, MaxDepth: 3, AllowValueConds: true},
		{Relations: rels, MaxDepth: 3, AllowStar: true},
		{Relations: rels, MaxDepth: 3, AllowStar: true, AllowValueConds: true},
		{Relations: rels, MaxDepth: 2, AllowUniverse: true},
	}
}

// TestPropertyEquivalence is the main property: across well over 1000
// random (store, expression) pairs, every evaluation route — reference
// Evaluator, flat engine (parallel, sequential, unoptimized) and the
// partition-parallel engines — returns byte-identical results.
func TestPropertyEquivalence(t *testing.T) {
	const nStores, perStore = 16, 95
	rng := rand.New(rand.NewSource(1234))
	cfgs := exprConfigs()
	pairs, failures := 0, 0
	for si := 0; si < nStores; si++ {
		s, label := RandomStore(rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		opt := optimizer.New(s)
		domain := len(s.ActiveDomain())
		for i := 0; i < perStore; i++ {
			cfg := cfgs[i%len(cfgs)]
			if cfg.AllowUniverse && domain > 10 {
				// U is cubic in the domain; keep it to small stores.
				cfg.AllowUniverse = false
			}
			x := genstore.RandomExpr(rng, cfg)
			// Cost guard: nested no-key joins square intermediate sizes,
			// and the property needs many pairs, not a few huge ones. The
			// planner's own cardinality estimate is the gate.
			if opt.Estimate(x) > 50_000 {
				continue
			}
			if CheckExpr(t, s, x, routes) {
				pairs++
			}
			if t.Failed() {
				failures++
				if failures > 20 {
					t.Fatalf("too many divergences (store %s); stopping early", label)
				}
			}
		}
	}
	if pairs < 1000 {
		t.Errorf("only %d successfully evaluated pairs, want >= 1000", pairs)
	}
	t.Logf("checked %d (store, expression) pairs across %d routes each",
		pairs, len(RoutesWithDisk(t, genstore.Chain(2, 1), shardCounts()...)))
}

// TestShardMatrix is the CI shard-matrix entry point: the named paper
// queries plus random star expressions, differentially checked at the
// shard count selected by -shards (or the default spread). Shard count 1
// is a valid matrix point and pins the flat-engine degradation.
func TestShardMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	stores := map[string]*triplestore.Store{
		"chain":  genstore.Chain(16, 2),
		"grid":   genstore.Grid(4, 4),
		"cycle":  genstore.Cycle(9),
		"social": genstore.Social(rng, 10, 24, 3, 3),
	}
	for label, s := range stores {
		t.Run(label, func(t *testing.T) {
			routes := RoutesWithDisk(t, s, shardCounts()...)
			for _, q := range []trial.Expr{
				trial.Example2(genstore.RelE),
				trial.Example2Extended(genstore.RelE),
				trial.ReachRight(genstore.RelE),
				trial.ReachUpRight(genstore.RelE),
				trial.SameLabelReach(genstore.RelE),
				trial.QueryQ(genstore.RelE),
			} {
				CheckExpr(t, s, q, routes)
			}
			cfg := genstore.ExprOptions{Relations: []string{genstore.RelE}, MaxDepth: 3, AllowStar: true}
			for i := 0; i < 40; i++ {
				CheckExpr(t, s, genstore.RandomExpr(rng, cfg), routes)
			}
		})
	}
}

// randCond draws up to three random condition atoms over all six join
// positions (mirroring the generator internal/genstore uses).
func randCond(rng *rand.Rand, withVals bool) trial.Cond {
	pool := []trial.Pos{trial.L1, trial.L2, trial.L3, trial.R1, trial.R2, trial.R3}
	var c trial.Cond
	for i := rng.Intn(3); i > 0; i-- {
		neq := rng.Intn(3) == 0
		if withVals && rng.Intn(3) == 0 {
			c.Val = append(c.Val, trial.ValAtom{
				L:         trial.RhoP(pool[rng.Intn(6)]),
				R:         trial.RhoP(pool[rng.Intn(6)]),
				Neq:       neq,
				Component: -1,
			})
		} else {
			c.Obj = append(c.Obj, trial.ObjAtom{
				L:   trial.P(pool[rng.Intn(6)]),
				R:   trial.P(pool[rng.Intn(6)]),
				Neq: neq,
			})
		}
	}
	return c
}

func randOut(rng *rand.Rand) [3]trial.Pos {
	pool := []trial.Pos{trial.L1, trial.L2, trial.L3, trial.R1, trial.R2, trial.R3}
	return [3]trial.Pos{pool[rng.Intn(6)], pool[rng.Intn(6)], pool[rng.Intn(6)]}
}

// TestMetamorphicJoinCommutation checks the paper's join-commutation
// identity on random joins over random stores:
// e1 ✶^{out}_θ e2 ≡ e2 ✶{mirror(out)}_{mirror(θ)} e1 on every route.
func TestMetamorphicJoinCommutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	sub := genstore.ExprOptions{Relations: []string{genstore.RelE}, MaxDepth: 2, AllowValueConds: true}
	checked := 0
	for si := 0; si < 8; si++ {
		s, _ := RandomStore(rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		for i := 0; i < 25; i++ {
			j := trial.MustJoin(
				genstore.RandomExpr(rng, sub),
				randOut(rng),
				randCond(rng, true),
				genstore.RandomExpr(rng, sub))
			if CheckEquivalent(t, s, j, MirrorJoin(j), routes) {
				checked++
			}
		}
	}
	if checked < 150 {
		t.Errorf("only %d commutation pairs evaluated", checked)
	}
}

// TestMetamorphicStarIdempotence checks (e*)* ≡ e* for the
// composition-shaped stars (where closure is idempotent and
// orientation-free — the collapse-nested-star identity).
func TestMetamorphicStarIdempotence(t *testing.T) {
	rng := rand.New(rand.NewSource(5678))
	sub := genstore.ExprOptions{Relations: []string{genstore.RelE}, MaxDepth: 2}
	checked := 0
	for si := 0; si < 8; si++ {
		s, _ := RandomStore(rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		for i := 0; i < 12; i++ {
			inner := ReachStar(genstore.RandomExpr(rng, sub), rng.Intn(2) == 0, rng.Intn(2) == 0)
			outer := trial.MustStar(inner, inner.Out, inner.Cond, rng.Intn(2) == 0)
			if CheckEquivalent(t, s, inner, outer, routes) {
				checked++
			}
		}
	}
	if checked < 60 {
		t.Errorf("only %d star-idempotence pairs evaluated", checked)
	}
}

// TestMetamorphicUnionLaws checks associativity, commutativity and
// idempotence (deduplication) of union on random subexpressions.
func TestMetamorphicUnionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(8765))
	sub := genstore.ExprOptions{Relations: []string{genstore.RelE}, MaxDepth: 2, AllowStar: true}
	for si := 0; si < 6; si++ {
		s, _ := RandomStore(rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		for i := 0; i < 15; i++ {
			a := genstore.RandomExpr(rng, sub)
			b := genstore.RandomExpr(rng, sub)
			c := genstore.RandomExpr(rng, sub)
			CheckEquivalent(t, s,
				trial.Union{L: a, R: trial.Union{L: b, R: c}},
				trial.Union{L: trial.Union{L: a, R: b}, R: c}, routes)
			CheckEquivalent(t, s, trial.Union{L: a, R: b}, trial.Union{L: b, R: a}, routes)
			CheckEquivalent(t, s, trial.Union{L: a, R: a}, a, routes)
		}
	}
}

// TestMetamorphicOptimizerRewrites pins the whole logical rule set as a
// metamorphic property: for any expression, the optimizer's output must
// evaluate byte-identically to the input on every route.
func TestMetamorphicOptimizerRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(2468))
	cfg := genstore.ExprOptions{Relations: []string{genstore.RelE}, MaxDepth: 4, AllowStar: true, AllowValueConds: true}
	for si := 0; si < 6; si++ {
		s, _ := RandomStore(rng)
		routes := RoutesWithDisk(t, s, shardCounts()...)
		opt := optimizer.New(s)
		for i := 0; i < 25; i++ {
			x := genstore.RandomExpr(rng, cfg)
			y, _ := opt.Optimize(x)
			CheckEquivalent(t, s, x, y, routes)
		}
	}
}
