// Package proptest is the property-based differential harness that pins
// every evaluation route of this repository to the same semantics: the
// reference trial.Evaluator, the flat internal/engine, and the
// partition-parallel engine over a triplestore.ShardedStore at several
// shard counts must produce byte-identical results (compared through the
// sorted textual rendering) on randomly generated stores and randomly
// generated TriAL* expressions.
//
// Beyond route equivalence, the harness checks the paper's algebraic
// identities as metamorphic properties — evaluating both sides of an
// identity through every route and requiring equality:
//
//   - join commutation: e1 ✶^{out}_θ e2 ≡ e2 ✶^{mirror(out)}_{mirror(θ)} e1,
//     the identity behind the optimizer's commute-join rule;
//   - closure idempotence: (e*)* ≡ e* for the composition-shaped
//     (reachTA=) stars, the collapse-nested-star identity of §5;
//   - union laws: associativity, commutativity and idempotence
//     (deduplication) of ∪.
//
// The suites run under plain `go test ./...`; the shard-matrix entry
// point honors a -shards flag so CI can sweep shard counts
// (`go test -shards=16 ./internal/proptest`), and FuzzShardedEvaluate
// extends the differential check to fuzzer-mutated expression texts,
// seeded from the trial parser's fuzz corpus.
package proptest
