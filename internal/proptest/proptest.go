package proptest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/genstore"
	"repro/internal/storage"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Route is one way to evaluate a TriAL* expression over a fixed store.
type Route struct {
	Label string
	Eval  func(trial.Expr) (*triplestore.Relation, error)
}

// Routes returns every evaluation route for s: the reference Evaluator
// (the oracle, always first), the flat engine (parallel and sequential,
// optimized and not), the forced physical-join policies (binary-only,
// leapfrog triejoin, sort-merge), and one partition-parallel engine per
// requested shard count, each over its own ShardedStore view of s. Shard
// count 1 is allowed and degenerates to the flat engine — useful for
// pinning the degradation path in a shard-count sweep.
func Routes(s *triplestore.Store, shardCounts ...int) []Route {
	ev := trial.NewEvaluator(s)
	routes := []Route{
		{Label: "evaluator", Eval: ev.Eval},
		{Label: "engine", Eval: engine.New(s).Eval},
		{Label: "engine-seq", Eval: engine.New(s, engine.WithWorkers(1)).Eval},
		{Label: "engine-noopt", Eval: engine.New(s, engine.WithoutOptimize()).Eval},
		{Label: "engine-nowco", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinNoWCO)).Eval},
		{Label: "engine-leapfrog", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinForceLeapfrog)).Eval},
		{Label: "engine-merge", Eval: engine.New(s, engine.WithJoinPolicy(engine.JoinForceMerge)).Eval},
	}
	for _, n := range shardCounts {
		e := engine.NewSharded(triplestore.Shard(s, n))
		routes = append(routes, Route{Label: fmt.Sprintf("sharded-%d", n), Eval: e.Eval})
		eseq := engine.NewSharded(triplestore.Shard(s, n).Snapshot(), engine.WithWorkers(1))
		routes = append(routes, Route{Label: fmt.Sprintf("sharded-%d-snap-seq", n), Eval: eseq.Eval})
		elf := engine.NewSharded(triplestore.Shard(s, n), engine.WithJoinPolicy(engine.JoinForceLeapfrog))
		routes = append(routes, Route{Label: fmt.Sprintf("sharded-%d-leapfrog", n), Eval: elf.Eval})
	}
	return routes
}

// RoutesWithDisk is Routes plus the disk-backed evaluation routes, so
// the differential and metamorphic properties also pin the storage
// engine against the in-memory semantics:
//
//   - "disk" evaluates over a store loaded from a segment checkpoint of
//     s (storage.CreateFrom preserves the dictionary, so results render
//     identically with no translation);
//   - "disk-cold" evaluates over the same kind of checkpoint opened
//     with a zero read budget: no relation is materialized, every index
//     probe and scan goes through the block-indexed segment-read path,
//     so the whole expression corpus differentially pins cold reads
//     against the in-memory semantics;
//   - "disk-recovered" replays s's content as WAL batches into a fresh
//     directory, abandons the engine without flushing (the crash path)
//     and reopens it, so evaluation runs over a crash-recovered store.
//     Recovery re-interns names in replay order, which need not match
//     s's dictionary; result triples are remapped by name before the
//     byte-identical comparison — expression constants are names, so
//     the expressions themselves are portable.
//
// The disk engines live in tb's temp dir and close on test cleanup.
func RoutesWithDisk(tb testing.TB, s *triplestore.Store, shardCounts ...int) []Route {
	tb.Helper()
	routes := Routes(s, shardCounts...)

	ckpt, err := storage.CreateFrom(filepath.Join(tb.TempDir(), "ckpt"),
		s, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		tb.Fatalf("proptest: checkpoint store: %v", err)
	}
	tb.Cleanup(func() { ckpt.Close() })
	routes = append(routes, Route{Label: "disk", Eval: engine.New(ckpt.Store()).Eval})

	cold, err := storage.CreateFrom(filepath.Join(tb.TempDir(), "cold"),
		s, storage.WithSyncPolicy(storage.SyncNone), storage.WithReadBudget(0))
	if err != nil {
		tb.Fatalf("proptest: cold checkpoint store: %v", err)
	}
	tb.Cleanup(func() { cold.Close() })
	routes = append(routes, Route{Label: "disk-cold", Eval: engine.New(cold.Store()).Eval})

	rec := recoveredEngine(tb, s)
	tb.Cleanup(func() { rec.Close() })
	d := rec.Store()
	de := engine.New(d)
	routes = append(routes, Route{Label: "disk-recovered", Eval: func(x trial.Expr) (*triplestore.Relation, error) {
		r, err := de.Eval(x)
		if err != nil {
			return nil, err
		}
		out := make([]triplestore.Triple, 0, r.Len())
		for _, t := range r.Triples() {
			var m triplestore.Triple
			for i, id := range t {
				if m[i] = s.Lookup(d.Name(id)); m[i] == triplestore.NoID {
					return nil, fmt.Errorf("disk-recovered produced %q, unknown to the source store", d.Name(id))
				}
			}
			out = append(out, m)
		}
		return triplestore.RelationOf(out...), nil
	}})
	return routes
}

// recoveredEngine rebuilds s through the crash path: its triples and
// values stream into a disk engine as ordinary WAL batches (one batch
// per relation; empty relations materialize via an add-then-delete
// pair), the engine is abandoned unflushed, and the directory reopened
// so the state comes entirely from WAL replay.
func recoveredEngine(tb testing.TB, s *triplestore.Store) *storage.Disk {
	tb.Helper()
	dir := filepath.Join(tb.TempDir(), "replay")
	// A huge flush threshold keeps everything in the WAL, so the reopen
	// below exercises replay rather than segment load.
	opts := []storage.Option{storage.WithSyncPolicy(storage.SyncNone), storage.WithFlushBytes(1 << 30)}
	eng, err := storage.Open(dir, opts...)
	if err != nil {
		tb.Fatalf("proptest: replay engine: %v", err)
	}
	for _, name := range s.RelationNames() {
		rel := s.Relation(name)
		ops := make([]triplestore.Op, 0, rel.Len()+2)
		for _, t := range rel.Triples() {
			ops = append(ops, triplestore.Op{Rel: name,
				S: s.Name(t[0]), P: s.Name(t[1]), O: s.Name(t[2])})
		}
		if len(ops) == 0 {
			// An add-then-delete pair creates the relation and leaves it
			// empty, preserving error parity for references to it.
			dummy := triplestore.Op{Rel: name, S: "·", P: "·", O: "·"}
			del := dummy
			del.Delete = true
			ops = append(ops, dummy, del)
		}
		if _, err := eng.ApplyBatch(ops); err != nil {
			tb.Fatalf("proptest: replay batch for %s: %v", name, err)
		}
	}
	for i := 0; i < s.NumObjects(); i++ {
		id := triplestore.ID(i)
		if v := s.Value(id); v != nil {
			if err := eng.SetValue(s.Name(id), v); err != nil {
				tb.Fatalf("proptest: replay value: %v", err)
			}
		}
	}
	if err := eng.Abandon(); err != nil {
		tb.Fatalf("proptest: abandon: %v", err)
	}
	rec, err := storage.Open(dir, opts...)
	if err != nil {
		tb.Fatalf("proptest: recover: %v", err)
	}
	return rec
}

// CheckExpr evaluates x through every route and requires byte-identical
// results (sorted rendering with object names) or error parity with the
// first route, the oracle. It reports whether the oracle evaluated x
// without error.
func CheckExpr(t testing.TB, s *triplestore.Store, x trial.Expr, routes []Route) bool {
	t.Helper()
	want, wantErr := routes[0].Eval(x)
	var wantText string
	if wantErr == nil {
		wantText = s.FormatRelation(want)
	}
	for _, r := range routes[1:] {
		got, err := r.Eval(x)
		if (wantErr == nil) != (err == nil) {
			t.Errorf("%s: error parity broken for %s: %s=%v, %v", r.Label, x, routes[0].Label, wantErr, err)
			continue
		}
		if wantErr != nil {
			continue
		}
		if gotText := s.FormatRelation(got); gotText != wantText {
			t.Errorf("%s diverges from %s on %s: %d vs %d triples",
				r.Label, routes[0].Label, x, got.Len(), want.Len())
		}
	}
	return wantErr == nil
}

// CheckEquivalent evaluates two expressions that must denote the same
// relation (a metamorphic identity) through every route, requiring the
// identical rendering everywhere. Identities are only meaningful when
// both sides evaluate; it reports whether they did.
func CheckEquivalent(t testing.TB, s *triplestore.Store, a, b trial.Expr, routes []Route) bool {
	t.Helper()
	ra, errA := routes[0].Eval(a)
	rb, errB := routes[0].Eval(b)
	if (errA == nil) != (errB == nil) {
		t.Errorf("identity sides disagree on error: %s -> %v, %s -> %v", a, errA, b, errB)
		return false
	}
	if errA != nil {
		return false
	}
	if ta, tb := s.FormatRelation(ra), s.FormatRelation(rb); ta != tb {
		t.Errorf("identity broken under %s: %s (%d triples) != %s (%d triples)",
			routes[0].Label, a, ra.Len(), b, rb.Len())
		return false
	}
	ok := CheckExpr(t, s, a, routes)
	CheckExpr(t, s, b, routes)
	return ok
}

// RandomStore draws one of the generator shapes of internal/genstore,
// sized to keep the differential oracle fast: random uniform triples,
// chains, cycles, grids, layered DAGs and social stores, with and
// without data values.
func RandomStore(rng *rand.Rand) (*triplestore.Store, string) {
	switch rng.Intn(6) {
	case 0:
		n, tr := 6+rng.Intn(8), 12+rng.Intn(20)
		return genstore.Random(rng, n, tr, rng.Intn(4)), fmt.Sprintf("random(%d,%d)", n, tr)
	case 1:
		n := 4 + rng.Intn(10)
		return genstore.Chain(n, 1+rng.Intn(3)), fmt.Sprintf("chain(%d)", n)
	case 2:
		n := 3 + rng.Intn(8)
		return genstore.Cycle(n), fmt.Sprintf("cycle(%d)", n)
	case 3:
		w, h := 2+rng.Intn(3), 2+rng.Intn(3)
		return genstore.Grid(w, h), fmt.Sprintf("grid(%d,%d)", w, h)
	case 4:
		d, wd := 2+rng.Intn(2), 2+rng.Intn(3)
		return genstore.Layered(rng, d, wd, 2), fmt.Sprintf("layered(%d,%d)", d, wd)
	default:
		u, e := 4+rng.Intn(6), 8+rng.Intn(16)
		return genstore.Social(rng, u, e, 3, 3), fmt.Sprintf("social(%d,%d)", u, e)
	}
}

// MirrorJoin returns the commuted join e2 ✶^{mirror(out)}_{mirror(θ)} e1:
// every position flips side (i ↔ i′), so at(mirror(p), t2, t1) =
// at(p, t1, t2) and both joins denote the same relation — the identity
// behind the optimizer's commute-join rewrite.
func MirrorJoin(j trial.Join) trial.Join {
	return trial.Join{
		L:    j.R,
		R:    j.L,
		Out:  [3]trial.Pos{MirrorPos(j.Out[0]), MirrorPos(j.Out[1]), MirrorPos(j.Out[2])},
		Cond: MirrorCond(j.Cond),
	}
}

// MirrorPos flips a position between the operands: 1 ↔ 1′ etc.
func MirrorPos(p trial.Pos) trial.Pos {
	if p.Left() {
		return p + 3
	}
	return p - 3
}

// MirrorCond flips every non-constant term of the condition.
func MirrorCond(c trial.Cond) trial.Cond {
	var m trial.Cond
	for _, a := range c.Obj {
		l, r := a.L, a.R
		if !l.IsConst {
			l = trial.P(MirrorPos(l.Pos))
		}
		if !r.IsConst {
			r = trial.P(MirrorPos(r.Pos))
		}
		m.Obj = append(m.Obj, trial.ObjAtom{L: l, R: r, Neq: a.Neq})
	}
	for _, a := range c.Val {
		l, r := a.L, a.R
		if !l.IsLit {
			l = trial.RhoP(MirrorPos(l.Pos))
		}
		if !r.IsLit {
			r = trial.RhoP(MirrorPos(r.Pos))
		}
		m.Val = append(m.Val, trial.ValAtom{L: l, R: r, Neq: a.Neq, Component: a.Component})
	}
	return m
}

// ReachStar wraps e in a composition-shaped (reachTA=) Kleene star —
// output (1, 2, 3′), condition 3 = 1′ (plus 2 = 2′ when sameLabel) —
// in the requested orientation. For exactly these shapes closure is
// idempotent and orientation-independent, so (ReachStar(e))* ≡
// ReachStar(e): the collapse-nested-star identity the metamorphic suite
// checks.
func ReachStar(e trial.Expr, sameLabel, left bool) trial.Star {
	cond := trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}
	if sameLabel {
		cond = cond.And(trial.Eq(trial.P(trial.L2), trial.P(trial.R2)))
	}
	return trial.MustStar(e, [3]trial.Pos{trial.L1, trial.L2, trial.R3}, cond, left)
}

// ExprSize counts the nodes of an expression — the cost guard the fuzz
// target uses to keep adversarial inputs bounded.
func ExprSize(x trial.Expr) int {
	switch n := x.(type) {
	case trial.Select:
		return 1 + ExprSize(n.E)
	case trial.Union:
		return 1 + ExprSize(n.L) + ExprSize(n.R)
	case trial.Diff:
		return 1 + ExprSize(n.L) + ExprSize(n.R)
	case trial.Join:
		return 1 + ExprSize(n.L) + ExprSize(n.R)
	case trial.Star:
		return 1 + ExprSize(n.E)
	default:
		return 1
	}
}

// HasUniverse reports whether the expression mentions the U primitive,
// which is cubic in the active domain and must be size-guarded.
func HasUniverse(x trial.Expr) bool {
	switch n := x.(type) {
	case trial.Universe:
		return true
	case trial.Select:
		return HasUniverse(n.E)
	case trial.Union:
		return HasUniverse(n.L) || HasUniverse(n.R)
	case trial.Diff:
		return HasUniverse(n.L) || HasUniverse(n.R)
	case trial.Join:
		return HasUniverse(n.L) || HasUniverse(n.R)
	case trial.Star:
		return HasUniverse(n.E)
	}
	return false
}
