package proptest

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// fuzzStore builds a small store from the fuzzed seed: one of the
// generator shapes, sized so even adversarial expressions (nested
// no-key stars and joins) evaluate in bounded time.
func fuzzStore(seed int64) *triplestore.Store {
	rng := rand.New(rand.NewSource(seed))
	switch rng.Intn(4) {
	case 0:
		return genstore.Random(rng, 6, 14, 3)
	case 1:
		return genstore.Chain(6, 1+rng.Intn(2))
	case 2:
		return genstore.Cycle(5)
	default:
		return genstore.Grid(3, 3)
	}
}

// FuzzShardedEvaluate extends the differential property to
// fuzzer-mutated expression texts: whatever parses must evaluate
// byte-identically on the reference Evaluator, the flat engine and the
// partition-parallel engine. The string seeds are the trial parser's
// fuzz corpus, so the corpus run under plain `go test` exercises the
// sharded executor on every shape the parser corpus covers.
func FuzzShardedEvaluate(f *testing.F) {
	for _, seed := range []string{
		"E",
		"U",
		"union(E, F)",
		"diff(U, E)",
		"sigma[1=2,p(1)!=p(3)](E)",
		"join[1,3',3; 2=1'](E, E)",
		"rstar[1,2,3'; 3=1',2=2'](rstar[1,3',3; 2=1'](E))",
		"lstar[1',2',3; 1=2'](E)",
		`sigma[2="part of"](E)`,
		"comp(inter(E, F))",
		"join[1,1,1](U, U)",
		"sigma[p(1)=p(2)@3](E)",
		"rstar[1,2,3'; 3=1',1!=3'](E)",
		"join[1,2,3'; 3=1'](E, rstar[1,2,3'; 3=1'](E))",
	} {
		f.Add(seed, int64(1), uint8(4))
		f.Add(seed, int64(9), uint8(16))
	}
	f.Fuzz(func(t *testing.T, src string, storeSeed int64, nShards uint8) {
		x, err := trial.Parse(src)
		if err != nil {
			return
		}
		// Cost guards: bounded AST, and U only over tiny domains (the
		// fuzz stores all qualify, but the guard documents the budget).
		if ExprSize(x) > 8 {
			return
		}
		s := fuzzStore(storeSeed)
		shards := 2 + int(nShards%15)
		routes := []Route{
			{Label: "evaluator", Eval: trial.NewEvaluator(s).Eval},
			{Label: "engine", Eval: engine.New(s).Eval},
			{Label: "sharded", Eval: engine.NewSharded(triplestore.Shard(s, shards)).Eval},
		}
		CheckExpr(t, s, x, routes)
	})
}
