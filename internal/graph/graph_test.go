package graph

import (
	"testing"

	"repro/internal/triplestore"
)

func TestAddAndQuery(t *testing.T) {
	g := New()
	g.AddEdge("a", "p", "b")
	g.AddEdge("b", "q", "c")
	g.AddNode("isolated")
	if !g.HasEdge("a", "p", "b") || g.HasEdge("b", "p", "a") {
		t.Error("HasEdge misbehaves")
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Errorf("sizes = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if got := g.Labels(); len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Errorf("labels = %v", got)
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Error("nodes not sorted")
		}
	}
}

func TestValues(t *testing.T) {
	g := New()
	g.SetValue("a", triplestore.V("x"))
	if !g.Value("a").Equal(triplestore.V("x")) {
		t.Error("value roundtrip failed")
	}
	if g.Value("missing") != nil {
		t.Error("missing node has value")
	}
}

func TestEqual(t *testing.T) {
	g := New()
	g.AddEdge("a", "p", "b")
	h := New()
	h.AddEdge("a", "p", "b")
	if !g.Equal(h) {
		t.Error("identical graphs unequal")
	}
	h.AddEdge("a", "q", "b")
	if g.Equal(h) {
		t.Error("different graphs equal")
	}
	// Value differences matter.
	g2 := New()
	g2.AddEdge("a", "p", "b")
	g2.SetValue("a", triplestore.V("1"))
	if g.Equal(g2) {
		t.Error("graphs with different values equal")
	}
}

func TestToTriplestore(t *testing.T) {
	g := New()
	g.AddEdge("v1", "a", "v2")
	g.AddEdge("v2", "b", "v1")
	g.SetValue("v1", triplestore.V("red"))
	s := g.ToTriplestore()
	if s.Size() != 2 {
		t.Fatalf("store size = %d", s.Size())
	}
	// O = V ∪ Σ: labels are objects too.
	if s.Lookup("a") == triplestore.NoID || s.Lookup("b") == triplestore.NoID {
		t.Error("labels not interned as objects")
	}
	tr := triplestore.Triple{s.Lookup("v1"), s.Lookup("a"), s.Lookup("v2")}
	if !s.Relation(RelE).Has(tr) {
		t.Error("edge triple missing")
	}
	if !s.Value(s.Lookup("v1")).Equal(triplestore.V("red")) {
		t.Error("node value lost")
	}
	if s.Value(s.Lookup("a")) != nil {
		t.Error("label should have no value")
	}
}

func TestFromTriplestoreRoundTrip(t *testing.T) {
	g := New()
	g.AddEdge("v1", "a", "v2")
	g.AddEdge("v2", "a", "v3")
	g.SetValue("v2", triplestore.V("x"))
	s := g.ToTriplestore()
	h, err := FromTriplestore(s, RelE)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Errorf("roundtrip changed graph:\n%s\nvs\n%s", g, h)
	}
	if _, err := FromTriplestore(s, "missing"); err == nil {
		t.Error("want error for missing relation")
	}
}
