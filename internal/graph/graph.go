package graph

import (
	"fmt"
	"sort"

	"repro/internal/triplestore"
)

// Edge is a labeled edge (Src, Label, Dst).
type Edge struct {
	Src, Label, Dst string
}

// Graph is a graph database over a finite labeling alphabet. Nodes and
// labels are identified by name.
type Graph struct {
	nodes  map[string]struct{}
	labels map[string]struct{}
	edges  map[Edge]struct{}
	values map[string]triplestore.Value
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:  make(map[string]struct{}),
		labels: make(map[string]struct{}),
		edges:  make(map[Edge]struct{}),
		values: make(map[string]triplestore.Value),
	}
}

// AddNode ensures the node exists (isolated nodes are allowed).
func (g *Graph) AddNode(v string) {
	g.nodes[v] = struct{}{}
}

// AddEdge inserts the edge (src, label, dst), adding its endpoints.
func (g *Graph) AddEdge(src, label, dst string) {
	g.AddNode(src)
	g.AddNode(dst)
	g.labels[label] = struct{}{}
	g.edges[Edge{src, label, dst}] = struct{}{}
}

// SetValue sets ρ(v). The node is added if missing.
func (g *Graph) SetValue(v string, val triplestore.Value) {
	g.AddNode(v)
	g.values[v] = val
}

// Value returns ρ(v) (nil if unset).
func (g *Graph) Value(v string) triplestore.Value { return g.values[v] }

// HasNode reports membership of v.
func (g *Graph) HasNode(v string) bool {
	_, ok := g.nodes[v]
	return ok
}

// HasEdge reports membership of the edge.
func (g *Graph) HasEdge(src, label, dst string) bool {
	_, ok := g.edges[Edge{src, label, dst}]
	return ok
}

// Nodes returns the node names in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for v := range g.nodes {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Labels returns the alphabet (labels used by at least one edge), sorted.
func (g *Graph) Labels() []string {
	out := make([]string, 0, len(g.labels))
	for l := range g.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edges sorted by (src, label, dst).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	return out
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Equal reports whether two graphs have identical nodes, edges and values.
// Used by the Proposition 1 experiment, which hinges on σ(D1) = σ(D2).
func (g *Graph) Equal(h *Graph) bool {
	if len(g.nodes) != len(h.nodes) || len(g.edges) != len(h.edges) {
		return false
	}
	for v := range g.nodes {
		if !h.HasNode(v) {
			return false
		}
	}
	for e := range g.edges {
		if _, ok := h.edges[e]; !ok {
			return false
		}
	}
	for v := range g.nodes {
		if !g.values[v].Equal(h.values[v]) {
			return false
		}
	}
	return true
}

// String renders the edge list, one edge per line, sorted.
func (g *Graph) String() string {
	s := ""
	for _, e := range g.Edges() {
		s += fmt.Sprintf("(%s, %s, %s)\n", e.Src, e.Label, e.Dst)
	}
	return s
}

// RelE is the relation name used by ToTriplestore.
const RelE = "E"

// ToTriplestore builds the triplestore T_G = (O, E, ρ) of §6.2 with
// O = V ∪ Σ: each edge (v, a, v′) becomes the triple (v, a, v′). Node data
// values carry over; label objects get no value (as in the paper).
func (g *Graph) ToTriplestore() *triplestore.Store {
	s := triplestore.NewStore()
	for _, v := range g.Nodes() {
		s.Intern(v)
	}
	for _, l := range g.Labels() {
		s.Intern(l)
	}
	for _, e := range g.Edges() {
		s.Add(RelE, e.Src, e.Label, e.Dst)
	}
	for v, val := range g.values {
		s.SetValue(v, val)
	}
	return s
}

// FromTriplestore interprets an arity-3 relation of a store as a graph:
// each triple (s, p, o) becomes an edge labeled p. Data values of subject
// and object nodes carry over. This is the inverse direction used when a
// triplestore is queried with graph languages.
func FromTriplestore(s *triplestore.Store, rel string) (*Graph, error) {
	r := s.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("graph: store has no relation %q", rel)
	}
	g := New()
	r.ForEach(func(t triplestore.Triple) {
		src, label, dst := s.Name(t[0]), s.Name(t[1]), s.Name(t[2])
		g.AddEdge(src, label, dst)
	})
	for _, v := range g.Nodes() {
		if id := s.Lookup(v); id != triplestore.NoID {
			if val := s.Value(id); val != nil {
				g.SetValue(v, val)
			}
		}
	}
	return g, nil
}
