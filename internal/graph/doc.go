// Package graph implements the graph-database model of §2.1 of the TriAL
// paper: finite edge-labeled directed graphs G = (V, E, ρ) with a data
// value attached to each node, the basic model for RPQs, NREs and GXPath.
// It also provides the encoding of graphs as triplestores used in §6.2
// (T_G over O = V ∪ Σ) so that TriAL* can be compared with graph query
// languages.
package graph
