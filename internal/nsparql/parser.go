package nsparql

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseQuery parses the textual nSPARQL syntax:
//
//	SELECT ?x ?y WHERE (?x, next::[next::part_of], ?y) AND
//	                   (?x, edge/next::part_of, <EastCoast>)
//
// Graph patterns are triple patterns combined with AND and UNION (AND
// binds tighter); parentheses group. Path expressions use:
//
//	exp  := seq ('|' seq)*
//	seq  := step ('/' step)*
//	step := axis ['^-'] ['::' (name | '<'name'>' | '[' exp ']')] ['*']
//	axis := self | next | edge | node
//
// Terms are ?variables or constants (bare identifiers or <bracketed>).
func ParseQuery(input string) (*Query, error) {
	p := &qparser{in: input}
	p.skip()
	if !p.word("SELECT") {
		return nil, fmt.Errorf("nsparql: expected SELECT")
	}
	q := &Query{}
	for {
		p.skip()
		if p.peekByte() != '?' {
			break
		}
		p.pos++
		v := p.ident()
		if v == "" {
			return nil, fmt.Errorf("nsparql: empty variable name in SELECT")
		}
		q.Select = append(q.Select, v)
	}
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("nsparql: SELECT needs at least one variable")
	}
	if !p.word("WHERE") {
		return nil, fmt.Errorf("nsparql: expected WHERE")
	}
	pat, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("nsparql: trailing input %q", p.in[p.pos:])
	}
	q.Where = pat
	return q, nil
}

// ParseExpr parses a bare path expression.
func ParseExpr(input string) (Expr, error) {
	p := &qparser{in: input}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("nsparql: trailing input %q", p.in[p.pos:])
	}
	return e, nil
}

type qparser struct {
	in  string
	pos int
}

func (p *qparser) skip() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *qparser) peekByte() byte {
	p.skip()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

// word consumes the given keyword (case-sensitive) if present.
func (p *qparser) word(w string) bool {
	p.skip()
	if strings.HasPrefix(p.in[p.pos:], w) {
		end := p.pos + len(w)
		if end == len(p.in) || !isQIdent(p.in[end]) {
			p.pos = end
			return true
		}
	}
	return false
}

func (p *qparser) ident() string {
	start := p.pos
	for p.pos < len(p.in) && isQIdent(p.in[p.pos]) {
		p.pos++
	}
	return p.in[start:p.pos]
}

func isQIdent(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// parseUnion := parseAnd ('UNION' parseAnd)*
func (p *qparser) parseUnion() (Pattern, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.word("UNION") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Union{L: l, R: r}
	}
	return l, nil
}

// parseAnd := atomPattern ('AND' atomPattern)*
func (p *qparser) parseAnd() (Pattern, error) {
	l, err := p.parsePatternAtom()
	if err != nil {
		return nil, err
	}
	for p.word("AND") {
		r, err := p.parsePatternAtom()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

// parsePatternAtom := '{' union '}' | '(' term ',' exp ',' term ')'
func (p *qparser) parsePatternAtom() (Pattern, error) {
	switch p.peekByte() {
	case '{':
		p.pos++
		inner, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != '}' {
			return nil, fmt.Errorf("nsparql: expected '}'")
		}
		p.pos++
		return inner, nil
	case '(':
		p.pos++
		s, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != ',' {
			return nil, fmt.Errorf("nsparql: expected ',' after subject")
		}
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != ',' {
			return nil, fmt.Errorf("nsparql: expected ',' after path expression")
		}
		p.pos++
		o, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("nsparql: expected ')' closing triple pattern")
		}
		p.pos++
		return Triple{S: s, E: e, O: o}, nil
	}
	return nil, fmt.Errorf("nsparql: expected '(' or '{' at %q", p.in[p.pos:])
}

func (p *qparser) parseTerm() (Term, error) {
	switch p.peekByte() {
	case '?':
		p.pos++
		v := p.ident()
		if v == "" {
			return Term{}, fmt.Errorf("nsparql: empty variable name")
		}
		return V(v), nil
	case '<':
		p.pos++
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("nsparql: unterminated '<'")
		}
		name := p.in[p.pos : p.pos+end]
		p.pos += end + 1
		return C(name), nil
	default:
		name := p.ident()
		if name == "" {
			return Term{}, fmt.Errorf("nsparql: expected term at %q", p.in[p.pos:])
		}
		return C(name), nil
	}
}

// parseAlt := seq ('|' seq)*
func (p *qparser) parseAlt() (Expr, error) {
	l, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for p.peekByte() == '|' {
		p.pos++
		r, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		l = Alt{L: l, R: r}
	}
	return l, nil
}

// parseSeq := step ('/' step)*
func (p *qparser) parseSeq() (Expr, error) {
	l, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	for p.peekByte() == '/' {
		p.pos++
		r, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		l = Seq{L: l, R: r}
	}
	return l, nil
}

// parseStep := '(' exp ')' ['*'] | axis ['^-'] ['::' test] ['*']
func (p *qparser) parseStep() (Expr, error) {
	if p.peekByte() == '(' {
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("nsparql: expected ')'")
		}
		p.pos++
		return p.maybeStar(inner), nil
	}
	p.skip()
	name := p.ident()
	var axis Axis
	switch name {
	case "self":
		axis = Self
	case "next":
		axis = Next
	case "edge":
		axis = Edge
	case "node":
		axis = Node
	default:
		return nil, fmt.Errorf("nsparql: expected axis, got %q", name)
	}
	step := Step{Axis: axis}
	if strings.HasPrefix(p.in[p.pos:], "^-") {
		p.pos += 2
		step.Inv = true
	}
	if strings.HasPrefix(p.in[p.pos:], "::") {
		p.pos += 2
		switch p.peekByte() {
		case '[':
			p.pos++
			nested, err := p.parseAlt()
			if err != nil {
				return nil, err
			}
			if p.peekByte() != ']' {
				return nil, fmt.Errorf("nsparql: expected ']'")
			}
			p.pos++
			step.Nested = nested
		case '<':
			p.pos++
			end := strings.IndexByte(p.in[p.pos:], '>')
			if end < 0 {
				return nil, fmt.Errorf("nsparql: unterminated '<'")
			}
			step.Const = p.in[p.pos : p.pos+end]
			step.HasConst = true
			p.pos += end + 1
		default:
			name := p.ident()
			if name == "" {
				return nil, fmt.Errorf("nsparql: expected axis test at %q", p.in[p.pos:])
			}
			step.Const = name
			step.HasConst = true
		}
	}
	return p.maybeStar(step), nil
}

func (p *qparser) maybeStar(e Expr) Expr {
	for p.peekByte() == '*' {
		p.pos++
		e = Star{E: e}
	}
	return e
}
