package nsparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Axis is one of the four navigation axes.
type Axis int

// The axes.
const (
	Self Axis = iota
	Next
	Edge
	Node
)

func (a Axis) String() string {
	switch a {
	case Self:
		return "self"
	case Next:
		return "next"
	case Edge:
		return "edge"
	case Node:
		return "node"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Expr is an nSPARQL path expression.
type Expr interface {
	String() string
	isExpr()
}

// Step is axis, axis⁻, axis::a, or axis::[e].
type Step struct {
	Axis Axis
	Inv  bool
	// Test constrains the step: at most one of Const/Nested is set.
	Const    string
	HasConst bool
	Nested   Expr
}

// Seq is exp/exp.
type Seq struct{ L, R Expr }

// Alt is exp|exp.
type Alt struct{ L, R Expr }

// Star is exp*.
type Star struct{ E Expr }

func (Step) isExpr() {}
func (Seq) isExpr()  {}
func (Alt) isExpr()  {}
func (Star) isExpr() {}

func (s Step) String() string {
	out := s.Axis.String()
	if s.Inv {
		out += "^-"
	}
	switch {
	case s.HasConst:
		out += "::" + s.Const
	case s.Nested != nil:
		out += "::[" + s.Nested.String() + "]"
	}
	return out
}
func (s Seq) String() string  { return "(" + s.L.String() + "/" + s.R.String() + ")" }
func (a Alt) String() string  { return "(" + a.L.String() + "|" + a.R.String() + ")" }
func (s Star) String() string { return s.E.String() + "*" }

// Rel is a binary relation over resource names.
type Rel map[[2]string]bool

// Pairs returns the relation's pairs, sorted.
func (r Rel) Pairs() [][2]string {
	out := make([][2]string, 0, len(r))
	for p := range r {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Equal reports relation equality.
func (r Rel) Equal(s Rel) bool {
	if len(r) != len(s) {
		return false
	}
	for p := range r {
		if !s[p] {
			return false
		}
	}
	return true
}

// Eval computes the relation of a path expression over the document.
func Eval(e Expr, d *rdf.Document) Rel {
	return eval(e, d, voc(d))
}

func voc(d *rdf.Document) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range d.Triples() {
		for _, v := range []string{t.S, t.P, t.O} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

func eval(e Expr, d *rdf.Document, nodes []string) Rel {
	switch x := e.(type) {
	case Step:
		return evalStep(x, d, nodes)
	case Seq:
		return compose(eval(x.L, d, nodes), eval(x.R, d, nodes))
	case Alt:
		l := eval(x.L, d, nodes)
		for p := range eval(x.R, d, nodes) {
			l[p] = true
		}
		return l
	case Star:
		return closure(eval(x.E, d, nodes), nodes)
	}
	return Rel{}
}

func evalStep(s Step, d *rdf.Document, nodes []string) Rel {
	out := Rel{}
	add := func(x, y string) {
		if s.Inv {
			out[[2]string{y, x}] = true
		} else {
			out[[2]string{x, y}] = true
		}
	}
	// hasSucc: the nested test ⟨e⟩ on a resource.
	var nested Rel
	if s.Nested != nil {
		nested = eval(s.Nested, d, nodes)
	}
	testOK := func(z string) bool {
		switch {
		case s.HasConst:
			return z == s.Const
		case s.Nested != nil:
			for _, w := range nodes {
				if nested[[2]string{z, w}] {
					return true
				}
			}
			return false
		}
		return true
	}
	if s.Axis == Self {
		for _, v := range nodes {
			if testOK(v) {
				add(v, v)
			}
		}
		return out
	}
	for _, t := range d.Triples() {
		var x, y, z string
		switch s.Axis {
		case Next:
			x, y, z = t.S, t.O, t.P
		case Edge:
			x, y, z = t.S, t.P, t.O
		case Node:
			x, y, z = t.P, t.O, t.S
		}
		if testOK(z) {
			add(x, y)
		}
	}
	return out
}

func compose(a, b Rel) Rel {
	right := map[string][]string{}
	for p := range b {
		right[p[0]] = append(right[p[0]], p[1])
	}
	out := Rel{}
	for p := range a {
		for _, w := range right[p[1]] {
			out[[2]string{p[0], w}] = true
		}
	}
	return out
}

func closure(r Rel, nodes []string) Rel {
	adj := map[string][]string{}
	for p := range r {
		adj[p[0]] = append(adj[p[0]], p[1])
	}
	out := Rel{}
	for _, src := range nodes {
		visited := map[string]bool{src: true}
		queue := []string{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			out[[2]string{src, v}] = true
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return out
}

// --- Query layer: triple patterns with AND and UNION ---

// Term is a variable or a resource constant.
type Term struct {
	Var     string
	Const   string
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(name string) Term { return Term{Const: name, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		return "<" + t.Const + ">"
	}
	return "?" + t.Var
}

// Pattern is an nSPARQL graph pattern.
type Pattern interface {
	String() string
	isPattern()
}

// Triple is a triple pattern (t1, exp, t2).
type Triple struct {
	S Term
	E Expr
	O Term
}

// And is conjunction (SPARQL's AND / join of mappings).
type And struct{ L, R Pattern }

// Union is disjunction.
type Union struct{ L, R Pattern }

func (Triple) isPattern() {}
func (And) isPattern()    {}
func (Union) isPattern()  {}

func (t Triple) String() string {
	return "(" + t.S.String() + ", " + t.E.String() + ", " + t.O.String() + ")"
}
func (a And) String() string   { return "(" + a.L.String() + " AND " + a.R.String() + ")" }
func (u Union) String() string { return "(" + u.L.String() + " UNION " + u.R.String() + ")" }

// Binding maps variables to resources.
type Binding map[string]string

// EvalPattern returns the set of bindings satisfying the pattern.
func EvalPattern(p Pattern, d *rdf.Document) []Binding {
	switch x := p.(type) {
	case Triple:
		rel := Eval(x.E, d)
		var out []Binding
		for pr := range rel {
			b := Binding{}
			if ok := bindTerm(b, x.S, pr[0]); !ok {
				continue
			}
			if ok := bindTerm(b, x.O, pr[1]); !ok {
				continue
			}
			out = append(out, b)
		}
		return out
	case And:
		left := EvalPattern(x.L, d)
		right := EvalPattern(x.R, d)
		var out []Binding
		for _, l := range left {
			for _, r := range right {
				if m, ok := mergeBindings(l, r); ok {
					out = append(out, m)
				}
			}
		}
		return dedupe(out)
	case Union:
		return dedupe(append(EvalPattern(x.L, d), EvalPattern(x.R, d)...))
	}
	return nil
}

func bindTerm(b Binding, t Term, val string) bool {
	if t.IsConst {
		return t.Const == val
	}
	if prev, ok := b[t.Var]; ok {
		return prev == val
	}
	b[t.Var] = val
	return true
}

func mergeBindings(a, b Binding) (Binding, bool) {
	m := Binding{}
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		if prev, ok := m[k]; ok && prev != v {
			return nil, false
		}
		m[k] = v
	}
	return m, true
}

func dedupe(bs []Binding) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(b[k])
			sb.WriteByte(';')
		}
		if !seen[sb.String()] {
			seen[sb.String()] = true
			out = append(out, b)
		}
	}
	return out
}

// Query is a SELECT over a pattern.
type Query struct {
	Select []string
	Where  Pattern
}

// EvalQuery returns the projected answer tuples, sorted and deduplicated.
// Variables unbound in a branch (possible under UNION) render as "".
func EvalQuery(q *Query, d *rdf.Document) [][]string {
	bindings := EvalPattern(q.Where, d)
	seen := map[string][]string{}
	for _, b := range bindings {
		tuple := make([]string, len(q.Select))
		for i, v := range q.Select {
			tuple[i] = b[v]
		}
		seen[strings.Join(tuple, "\x00")] = tuple
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}
