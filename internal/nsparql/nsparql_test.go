package nsparql

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

func transportDoc(t *testing.T) *rdf.Document {
	t.Helper()
	d, err := rdf.FromStore(fixtures.Transport(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func has(r Rel, x, y string) bool { return r[[2]string{x, y}] }

func TestAxes(t *testing.T) {
	d := rdf.NewDocument()
	d.Add("s", "p", "o")
	if r := Eval(Step{Axis: Next}, d); !has(r, "s", "o") || len(r) != 1 {
		t.Errorf("next = %v", r)
	}
	if r := Eval(Step{Axis: Edge}, d); !has(r, "s", "p") || len(r) != 1 {
		t.Errorf("edge = %v", r)
	}
	if r := Eval(Step{Axis: Node}, d); !has(r, "p", "o") || len(r) != 1 {
		t.Errorf("node = %v", r)
	}
	if r := Eval(Step{Axis: Self}, d); len(r) != 3 || !has(r, "p", "p") {
		t.Errorf("self = %v", r)
	}
	if r := Eval(Step{Axis: Next, Inv: true}, d); !has(r, "o", "s") {
		t.Errorf("next⁻ = %v", r)
	}
}

func TestAxisTests(t *testing.T) {
	d := transportDoc(t)
	// next::part_of — only the part_of edges.
	r := Eval(Step{Axis: Next, Const: "part_of", HasConst: true}, d)
	if len(r) != 4 || !has(r, "Train Op 1", "EastCoast") {
		t.Errorf("next::part_of = %v", r)
	}
	// self::London.
	s := Eval(Step{Axis: Self, Const: "London", HasConst: true}, d)
	if len(s) != 1 || !has(s, "London", "London") {
		t.Errorf("self::London = %v", s)
	}
}

func TestNestedTest(t *testing.T) {
	d := transportDoc(t)
	// next::[next::part_of]: travel edges whose *predicate* (the service)
	// has an outgoing part_of edge — exactly the three city connections.
	e := Step{Axis: Next, Nested: Step{Axis: Next, Const: "part_of", HasConst: true}}
	r := Eval(e, d)
	want := [][2]string{
		{"St. Andrews", "Edinburgh"},
		{"Edinburgh", "London"},
		{"London", "Brussels"},
	}
	if len(r) != len(want) {
		t.Fatalf("next::[next::part_of] = %v", r)
	}
	for _, w := range want {
		if !r[w] {
			t.Errorf("missing %v", w)
		}
	}
}

func TestSeqAltStar(t *testing.T) {
	d := transportDoc(t)
	// (next::part_of)*: reflexive-transitive part_of reachability.
	star := Eval(Star{E: Step{Axis: Next, Const: "part_of", HasConst: true}}, d)
	if !has(star, "Train Op 1", "NatExpress") {
		t.Error("part_of* missing two-step pair")
	}
	if !has(star, "London", "London") {
		t.Error("star should be reflexive over voc(D)")
	}
	// next/next: two travel hops.
	seq := Eval(Seq{L: Step{Axis: Next}, R: Step{Axis: Next}}, d)
	if !has(seq, "St. Andrews", "London") {
		t.Errorf("next/next = %v", seq)
	}
	alt := Eval(Alt{
		L: Step{Axis: Next, Const: "part_of", HasConst: true},
		R: Step{Axis: Edge},
	}, d)
	if !has(alt, "Train Op 1", "EastCoast") || !has(alt, "Edinburgh", "Train Op 1") {
		t.Errorf("alt = %v", alt)
	}
}

func TestQueryLayer(t *testing.T) {
	d := transportDoc(t)
	// SELECT ?x ?y WHERE (?x, next::[next::part_of], ?y) AND
	//                    (?y, next::part_of was wrong...) — use a join:
	// cities reachable from Edinburgh in one hop whose service belongs to
	// EastCoast.
	q := &Query{
		Select: []string{"x", "y"},
		Where: And{
			L: Triple{S: V("x"), E: Step{Axis: Next}, O: V("y")},
			R: Triple{
				S: V("x"),
				E: Seq{
					L: Step{Axis: Edge},
					R: Step{Axis: Next, Const: "part_of", HasConst: true},
				},
				O: C("EastCoast"),
			},
		},
	}
	got := EvalQuery(q, d)
	if len(got) != 1 || got[0][0] != "Edinburgh" || got[0][1] != "London" {
		t.Errorf("answers = %v", got)
	}
}

func TestQueryUnion(t *testing.T) {
	d := transportDoc(t)
	q := &Query{
		Select: []string{"x"},
		Where: Union{
			L: Triple{S: V("x"), E: Step{Axis: Next}, O: C("London")},
			R: Triple{S: V("x"), E: Step{Axis: Next}, O: C("Brussels")},
		},
	}
	got := EvalQuery(q, d)
	if len(got) != 2 { // Edinburgh and London
		t.Errorf("answers = %v", got)
	}
}

func TestQueryConstantMismatch(t *testing.T) {
	d := transportDoc(t)
	q := &Query{
		Select: []string{"x"},
		Where:  Triple{S: C("NoSuchCity"), E: Step{Axis: Next}, O: V("x")},
	}
	if got := EvalQuery(q, d); len(got) != 0 {
		t.Errorf("answers = %v", got)
	}
}

// TestTheorem1OnD1D2 pins down a genuine subtlety found during the
// reproduction. The TriAL paper formalizes nSPARQL's navigation as NREs
// whose semantics "is essentially given according to the translation
// σ(·)" (appendix, proof of Theorem 1): axes are binary relations derived
// from triples and nesting is the graph-style node test. Under that
// semantics D1 and D2 are indistinguishable (experiment E5 checks this
// through internal/nre.TripleStructure).
//
// Genuine nSPARQL's axis::[exp], however, tests the remaining component
// of a *single* triple — it does NOT factor through σ(·), because σ
// decouples the edge and node steps of one triple. The one-hop pattern
// next::[next::part_of] therefore DOES distinguish D1 from D2: D1 derives
// (Edinburgh, London) from the triple (Edinburgh, Train Op 1, London),
// which D2 lacks, and D2's alternative (Edinburgh, Train Op 3, London)
// fails the test since Train Op 3 has no part_of edge. This test pins
// both behaviours; the paper's inexpressibility claim concerns its
// σ-factoring formalization (and the *recursive* Q stays out of reach of
// either semantics — the star cannot hold the company fixed across hops).
func TestTheorem1OnD1D2(t *testing.T) {
	d1, err := rdf.FromStore(fixtures.D1(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rdf.FromStore(fixtures.D2(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	agreeing := []Expr{
		// Axis navigation without triple-local tests factors through σ.
		Seq{L: Step{Axis: Edge}, R: Step{Axis: Node}},
		Star{E: Step{Axis: Next}},
		Alt{L: Step{Axis: Next}, R: Step{Axis: Node, Inv: true}},
		Star{E: Step{Axis: Next, Const: "part_of", HasConst: true}},
	}
	for _, e := range agreeing {
		a := Eval(e, d1)
		b := Eval(e, d2)
		same := len(a) == len(b)
		for p := range a {
			if !b[p] {
				same = false
			}
		}
		if !same {
			t.Fatalf("σ-factoring expression %s distinguishes D1/D2", e)
		}
	}
	// The triple-local nested test distinguishes the documents.
	oneHop := Step{Axis: Next, Nested: Step{Axis: Next, Const: "part_of", HasConst: true}}
	a := Eval(oneHop, d1)
	b := Eval(oneHop, d2)
	key := [2]string{"Edinburgh", "London"}
	if !a[key] {
		t.Errorf("%s should relate Edinburgh to London on D1", oneHop)
	}
	if b[key] {
		t.Errorf("%s should NOT relate Edinburgh to London on D2 (Train Op 3 has no part_of)", oneHop)
	}
}

func TestStrings(t *testing.T) {
	e := Seq{
		L: Step{Axis: Next, Inv: true, Const: "a", HasConst: true},
		R: Star{E: Step{Axis: Self, Nested: Step{Axis: Edge}}},
	}
	want := "(next^-::a/self::[edge]*)"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	q := Triple{S: V("x"), E: Step{Axis: Next}, O: C("London")}
	if got := q.String(); got != "(?x, next, <London>)" {
		t.Errorf("pattern String = %q", got)
	}
}
