// Package nsparql implements the navigational core of nSPARQL (Pérez,
// Arenas & Gutierrez, J. Web Sem. 2010), the language Theorem 1 of the
// TriAL paper proves unable to express the query Q. Path expressions are
// nested regular expressions over the four axes
//
//	exp := axis | axis::a | axis::[exp] | exp/exp | exp|exp | exp*
//	axis ∈ {self, next, edge, node} and their inverses
//
// interpreted over an RDF document D (vocabulary voc(D) = all resources):
//
//	next  = {(x, y) | ∃z (x, z, y) ∈ D}    next::a  via (x, a, y)
//	edge  = {(x, y) | ∃z (x, y, z) ∈ D}    edge::a  via (x, y, a)
//	node  = {(x, y) | ∃z (z, x, y) ∈ D}    node::a  via (a, x, y)
//	self  = {(x, x) | x ∈ voc(D)}          self::a  = {(a, a)}
//
// The nested test axis::[e] constrains the triple's remaining component:
// next::[e] relates x to y through a triple (x, z, y) whose predicate z
// has an e-successor — the mechanism nSPARQL uses to emulate RDFS
// inference. Queries combine triple patterns whose middle position is a
// path expression, with AND and UNION.
//
// Semantics note. Plain axis navigation factors through the σ(·)
// encoding, which is how the TriAL paper's Theorem 1 proof formalizes
// nSPARQL (and experiment E5 reproduces). The triple-local nested test
// axis::[e] implemented here is strictly stronger than an NRE over σ(·):
// σ decouples the edge and node steps of a single triple, so the one-hop
// pattern next::[next::part_of] distinguishes the Theorem 1 witness
// documents D1/D2 even though no NRE over σ(·) can (see
// TestTheorem1OnD1D2 and the deviation notes in internal/experiments). The
// paper's recursive query Q remains inexpressible either way: the Kleene
// star cannot hold the witnessing company fixed across hops.
package nsparql
