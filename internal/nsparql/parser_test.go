package nsparql

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"next", "next"},
		{"next^-", "next^-"},
		{"next::part_of", "next::part_of"},
		{"next::<part of>", "next::part of"},
		{"next::[next::part_of]", "next::[next::part_of]"},
		{"edge/node", "(edge/node)"},
		{"next|node^-", "(next|node^-)"},
		{"next*", "next*"},
		{"(next/edge)*", "(next/edge)*"},
		{"self::London", "self::London"},
		{"next::part_of*", "next::part_of*"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseExpr(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "sideways", "next::", "next::[next", "(next", "next/"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q): want error", bad)
		}
	}
}

func TestParseQueryEvaluates(t *testing.T) {
	d, err := rdf.FromStore(fixtures.Transport(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
		SELECT ?x ?y WHERE
			(?x, next, ?y) AND
			(?x, edge/next::part_of, <EastCoast>)
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := EvalQuery(q, d)
	if len(got) != 1 || got[0][0] != "Edinburgh" || got[0][1] != "London" {
		t.Errorf("answers = %v", got)
	}
}

func TestParseQueryUnionBraces(t *testing.T) {
	d, err := rdf.FromStore(fixtures.Transport(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
		SELECT ?x WHERE
			{ (?x, next, <London>) UNION (?x, next, <Brussels>) } AND
			(?x, self, ?x)
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := EvalQuery(q, d)
	if len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT WHERE (?x, next, ?y)",
		"SELECT ?x (?x, next, ?y)",
		"SELECT ?x WHERE (?x next ?y)",
		"SELECT ?x WHERE (?x, next, ?y",
		"SELECT ?x WHERE (?x, next, ?y) garbage",
		"SELECT ?x WHERE { (?x, next, ?y)",
		"SELECT ?x WHERE (?x, next, <unterminated)",
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q): want error", bad)
		}
	}
}

// TestParsedNestedAgainstBuilt: the parsed nested test behaves like the
// hand-built one from TestNestedTest.
func TestParsedNestedAgainstBuilt(t *testing.T) {
	d, err := rdf.FromStore(fixtures.Transport(), fixtures.RelE)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExpr("next::[next::part_of]")
	if err != nil {
		t.Fatal(err)
	}
	built := Step{Axis: Next, Nested: Step{Axis: Next, Const: "part_of", HasConst: true}}
	a, b := Eval(parsed, d), Eval(built, d)
	if len(a) != len(b) {
		t.Fatalf("parsed %v vs built %v", a, b)
	}
	for p := range a {
		if !b[p] {
			t.Fatalf("parsed and built disagree at %v", p)
		}
	}
}
