package gxpath

import (
	"math/rand"
	"testing"
)

func TestParsePathExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Path
	}{
		{"eps", Eps{}},
		{"a", Label{A: "a"}},
		{"part_of", Label{A: "part_of"}},
		{"a^-", Label{A: "a", Inv: true}},
		{"a.b", Concat{L: Label{A: "a"}, R: Label{A: "b"}}},
		{"a u b", Union{L: Label{A: "a"}, R: Label{A: "b"}}},
		{"a*", Star{P: Label{A: "a"}}},
		{"~(a)", Complement{P: Label{A: "a"}}},
		{"[T]", Test{N: Top{}}},
		{"a_=", DataCmp{P: Label{A: "a"}}},
		{"part_of_!=", DataCmp{P: Label{A: "part_of"}, Neq: true}},
		{"(a.b)* u eps", Union{
			L: Star{P: Concat{L: Label{A: "a"}, R: Label{A: "b"}}},
			R: Eps{}}},
		{"[<a> & !(T)]", Test{N: And{L: Diamond{P: Label{A: "a"}}, R: Not{N: Top{}}}}},
		{"[<a = b^->]", Test{N: DataTest{L: Label{A: "a"}, R: Label{A: "b", Inv: true}}}},
		{"[<a != b>]", Test{N: DataTest{L: Label{A: "a"}, R: Label{A: "b"}, Neq: true}}},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if err != nil {
			t.Errorf("ParsePath(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want.String() {
			t.Errorf("ParsePath(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, in := range []string{
		"", "(", "(a", "a u", "a.", "~a", "[T", "[<a>", "a )", "<a>", "!T",
		"[<a = >]", "u", "*",
	} {
		if _, err := ParsePath(in); err == nil {
			t.Errorf("ParsePath(%q): want error", in)
		}
	}
}

func TestParseNodeExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Node
	}{
		{"T", Top{}},
		{"!(T)", Not{N: Top{}}},
		{"(T & T)", And{L: Top{}, R: Top{}}},
		{"T | T", Or{L: Top{}, R: Top{}}},
		{"<a u b>", Diamond{P: Union{L: Label{A: "a"}, R: Label{A: "b"}}}},
		{"<eps = a>", DataTest{L: Eps{}, R: Label{A: "a"}}},
	}
	for _, c := range cases {
		got, err := ParseNode(c.in)
		if err != nil {
			t.Errorf("ParseNode(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want.String() {
			t.Errorf("ParseNode(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseNodeErrors(t *testing.T) {
	for _, in := range []string{"", "T &", "T |", "(T", "<a", "<a = b", "x"} {
		if _, err := ParseNode(in); err == nil {
			t.Errorf("ParseNode(%q): want error", in)
		}
	}
}

// TestParseRoundTrip: parsing the String rendering of random formulas
// reproduces the formula. This pins parser and printer to each other —
// the property internal/query relies on when it accepts GXPath text.
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 300; i++ {
		p := randPathQ(rng, 3)
		got, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", p, err)
		}
		if got.String() != p.String() {
			t.Fatalf("round trip changed %q to %q", p, got)
		}
	}
	for i := 0; i < 300; i++ {
		n := randNodeQ(rng, 3)
		got, err := ParseNode(n.String())
		if err != nil {
			t.Fatalf("ParseNode(%q): %v", n, err)
		}
		if got.String() != n.String() {
			t.Fatalf("round trip changed %q to %q", n, got)
		}
	}
}

// randNodeQ generates a random node formula (randPathQ lives in
// quick_test.go and only emits Test-wrapped Diamond nodes).
func randNodeQ(rng *rand.Rand, depth int) Node {
	if depth <= 0 {
		return Top{}
	}
	switch rng.Intn(6) {
	case 0:
		return Top{}
	case 1:
		return Not{N: randNodeQ(rng, depth-1)}
	case 2:
		return And{L: randNodeQ(rng, depth-1), R: randNodeQ(rng, depth-1)}
	case 3:
		return Or{L: randNodeQ(rng, depth-1), R: randNodeQ(rng, depth-1)}
	case 4:
		return Diamond{P: randPathQ(rng, depth-1)}
	default:
		return DataTest{L: randPathQ(rng, depth-1), R: randPathQ(rng, depth-1), Neq: rng.Intn(2) == 0}
	}
}
