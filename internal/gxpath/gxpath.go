package gxpath

import (
	"sort"

	"repro/internal/graph"
)

// Node is a node formula.
type Node interface {
	String() string
	isNode()
}

// Path is a path formula.
type Path interface {
	String() string
	isPath()
}

// Top is ⊤ (all nodes).
type Top struct{}

// Not is ¬ϕ.
type Not struct{ N Node }

// And is ϕ∧ψ.
type And struct{ L, R Node }

// Or is ϕ∨ψ.
type Or struct{ L, R Node }

// Diamond is ⟨α⟩: nodes with an outgoing α-path.
type Diamond struct{ P Path }

// DataTest is ⟨α = β⟩ (or ⟨α ≠ β⟩ when Neq): nodes v with α- and β-successors
// vα, vβ such that ρ(vα) = ρ(vβ) (resp. ≠).
type DataTest struct {
	L, R Path
	Neq  bool
}

// Eps is ε, the diagonal.
type Eps struct{}

// Label is a or a⁻.
type Label struct {
	A   string
	Inv bool
}

// Test is the node test [ϕ].
type Test struct{ N Node }

// Concat is α·β.
type Concat struct{ L, R Path }

// Union is α∪β.
type Union struct{ L, R Path }

// Complement is ᾱ = V×V − α.
type Complement struct{ P Path }

// Star is α*.
type Star struct{ P Path }

// DataCmp is α₌ (or α≠ when Neq): the pairs (v, v′) of α whose endpoints
// carry equal (resp. different) data values — regular expressions with
// (in)equality of [Libkin & Vrgoč, ICDT 2012].
type DataCmp struct {
	P   Path
	Neq bool
}

func (Top) isNode()      {}
func (Not) isNode()      {}
func (And) isNode()      {}
func (Or) isNode()       {}
func (Diamond) isNode()  {}
func (DataTest) isNode() {}

func (Eps) isPath()        {}
func (Label) isPath()      {}
func (Test) isPath()       {}
func (Concat) isPath()     {}
func (Union) isPath()      {}
func (Complement) isPath() {}
func (Star) isPath()       {}
func (DataCmp) isPath()    {}

func (Top) String() string       { return "T" }
func (n Not) String() string     { return "!(" + n.N.String() + ")" }
func (n And) String() string     { return "(" + n.L.String() + " & " + n.R.String() + ")" }
func (n Or) String() string      { return "(" + n.L.String() + " | " + n.R.String() + ")" }
func (n Diamond) String() string { return "<" + n.P.String() + ">" }
func (n DataTest) String() string {
	op := " = "
	if n.Neq {
		op = " != "
	}
	return "<" + n.L.String() + op + n.R.String() + ">"
}

func (Eps) String() string { return "eps" }
func (p Label) String() string {
	if p.Inv {
		return p.A + "^-"
	}
	return p.A
}
func (p Test) String() string       { return "[" + p.N.String() + "]" }
func (p Concat) String() string     { return "(" + p.L.String() + "." + p.R.String() + ")" }
func (p Union) String() string      { return "(" + p.L.String() + " u " + p.R.String() + ")" }
func (p Complement) String() string { return "~(" + p.P.String() + ")" }
func (p Star) String() string       { return p.P.String() + "*" }
func (p DataCmp) String() string {
	if p.Neq {
		return p.P.String() + "_!="
	}
	return p.P.String() + "_="
}

// Rel is a binary relation over node names.
type Rel map[[2]string]bool

// NodeSet is a set of node names.
type NodeSet map[string]bool

// EvalPath computes the relation denoted by a path formula over g.
func EvalPath(p Path, g *graph.Graph) Rel {
	switch x := p.(type) {
	case Eps:
		out := Rel{}
		for _, v := range g.Nodes() {
			out[[2]string{v, v}] = true
		}
		return out
	case Label:
		out := Rel{}
		for _, e := range g.Edges() {
			if e.Label != x.A {
				continue
			}
			if x.Inv {
				out[[2]string{e.Dst, e.Src}] = true
			} else {
				out[[2]string{e.Src, e.Dst}] = true
			}
		}
		return out
	case Test:
		set := EvalNode(x.N, g)
		out := Rel{}
		for v := range set {
			out[[2]string{v, v}] = true
		}
		return out
	case Concat:
		return compose(EvalPath(x.L, g), EvalPath(x.R, g))
	case Union:
		l := EvalPath(x.L, g)
		for pr := range EvalPath(x.R, g) {
			l[pr] = true
		}
		return l
	case Complement:
		inner := EvalPath(x.P, g)
		out := Rel{}
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if !inner[[2]string{u, v}] {
					out[[2]string{u, v}] = true
				}
			}
		}
		return out
	case Star:
		return closure(EvalPath(x.P, g), g.Nodes())
	case DataCmp:
		inner := EvalPath(x.P, g)
		out := Rel{}
		for pr := range inner {
			eq := g.Value(pr[0]).Equal(g.Value(pr[1]))
			if eq != x.Neq {
				out[pr] = true
			}
		}
		return out
	}
	return Rel{}
}

// EvalNode computes the set denoted by a node formula over g.
func EvalNode(n Node, g *graph.Graph) NodeSet {
	switch x := n.(type) {
	case Top:
		out := NodeSet{}
		for _, v := range g.Nodes() {
			out[v] = true
		}
		return out
	case Not:
		inner := EvalNode(x.N, g)
		out := NodeSet{}
		for _, v := range g.Nodes() {
			if !inner[v] {
				out[v] = true
			}
		}
		return out
	case And:
		l := EvalNode(x.L, g)
		r := EvalNode(x.R, g)
		out := NodeSet{}
		for v := range l {
			if r[v] {
				out[v] = true
			}
		}
		return out
	case Or:
		l := EvalNode(x.L, g)
		for v := range EvalNode(x.R, g) {
			l[v] = true
		}
		return l
	case Diamond:
		rel := EvalPath(x.P, g)
		out := NodeSet{}
		for pr := range rel {
			out[pr[0]] = true
		}
		return out
	case DataTest:
		l := EvalPath(x.L, g)
		r := EvalPath(x.R, g)
		// Group successors by source.
		lSucc := map[string][]string{}
		for pr := range l {
			lSucc[pr[0]] = append(lSucc[pr[0]], pr[1])
		}
		rSucc := map[string][]string{}
		for pr := range r {
			rSucc[pr[0]] = append(rSucc[pr[0]], pr[1])
		}
		out := NodeSet{}
		for v, ls := range lSucc {
			for _, a := range ls {
				for _, b := range rSucc[v] {
					eq := g.Value(a).Equal(g.Value(b))
					if eq != x.Neq {
						out[v] = true
					}
				}
			}
		}
		return out
	}
	return NodeSet{}
}

func compose(a, b Rel) Rel {
	right := map[string][]string{}
	for p := range b {
		right[p[0]] = append(right[p[0]], p[1])
	}
	out := Rel{}
	for p := range a {
		for _, w := range right[p[1]] {
			out[[2]string{p[0], w}] = true
		}
	}
	return out
}

func closure(r Rel, nodes []string) Rel {
	adj := map[string][]string{}
	for p := range r {
		adj[p[0]] = append(adj[p[0]], p[1])
	}
	out := Rel{}
	for _, src := range nodes {
		visited := map[string]bool{src: true}
		queue := []string{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			out[[2]string{src, v}] = true
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return out
}

// Pairs returns the relation's pairs, sorted.
func (r Rel) Pairs() [][2]string {
	out := make([][2]string, 0, len(r))
	for p := range r {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Equal reports relation equality.
func (r Rel) Equal(s Rel) bool {
	if len(r) != len(s) {
		return false
	}
	for p := range r {
		if !s[p] {
			return false
		}
	}
	return true
}
