package gxpath

import (
	"fmt"
	"strings"
	"unicode"
)

// ParsePath parses the textual GXPath syntax, which round-trips the
// String renderings of this package:
//
//	path := cat (('u' | '∪') cat)*            union, lowest precedence
//	cat  := factor ('.' factor)*              concatenation
//	factor := atom ('*' | '_=' | '_!=')*      star and data comparisons
//	atom := 'eps' | label ['^-'] | '[' node ']'
//	      | '(' path ')' | '~' '(' path ')'   complement
//
//	node := conj ('|' conj)*                  disjunction
//	conj := natom ('&' natom)*                conjunction
//	natom := 'T' | '!' natom | '(' node ')'
//	       | '<' path '>'                     diamond
//	       | '<' path ('=' | '!=') path '>'   data test
//
// Labels are bare identifiers (letters, digits, '_', '-', ':', '#');
// the names 'eps', 'u' and 'T' are reserved by the grammar.
func ParsePath(input string) (Path, error) {
	p := &gxParser{in: input}
	e, err := p.parsePathUnion()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("gxpath: trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

// MustParsePath is ParsePath, panicking on error.
func MustParsePath(input string) Path {
	e, err := ParsePath(input)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseNode parses a node formula in the syntax of ParsePath.
func ParseNode(input string) (Node, error) {
	p := &gxParser{in: input}
	e, err := p.parseNodeOr()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("gxpath: trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

// MustParseNode is ParseNode, panicking on error.
func MustParseNode(input string) Node {
	e, err := ParseNode(input)
	if err != nil {
		panic(err)
	}
	return e
}

type gxParser struct {
	in  string
	pos int
}

func (p *gxParser) skip() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *gxParser) peek() byte {
	p.skip()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *gxParser) has(s string) bool {
	p.skip()
	return strings.HasPrefix(p.in[p.pos:], s)
}

// ident scans a label. A '_' is part of the label unless it starts the
// data-comparison postfix '_=' or '_!=', so part_of parses as one label
// while a_= parses as the comparison of a.
func (p *gxParser) ident() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '_' {
			rest := p.in[p.pos+1:]
			if strings.HasPrefix(rest, "=") || strings.HasPrefix(rest, "!=") {
				break
			}
		} else if !isGXIdent(c) {
			break
		}
		p.pos++
	}
	return p.in[start:p.pos]
}

func isGXIdent(c byte) bool {
	return c == '_' || c == '-' || c == ':' || c == '#' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// peekUnionOp reports whether the next token is the union operator 'u'
// (the bare identifier) or '∪'.
func (p *gxParser) peekUnionOp() bool {
	p.skip()
	if strings.HasPrefix(p.in[p.pos:], "∪") {
		return true
	}
	if p.pos < len(p.in) && p.in[p.pos] == 'u' {
		// 'u' is the operator only when not part of a longer identifier.
		return p.pos+1 == len(p.in) || !isGXIdent(p.in[p.pos+1])
	}
	return false
}

func (p *gxParser) parsePathUnion() (Path, error) {
	l, err := p.parsePathCat()
	if err != nil {
		return nil, err
	}
	for p.peekUnionOp() {
		if p.in[p.pos] == 'u' {
			p.pos++
		} else {
			p.pos += len("∪")
		}
		r, err := p.parsePathCat()
		if err != nil {
			return nil, err
		}
		l = Union{L: l, R: r}
	}
	return l, nil
}

func (p *gxParser) parsePathCat() (Path, error) {
	l, err := p.parsePathFactor()
	if err != nil {
		return nil, err
	}
	for p.peek() == '.' {
		p.pos++
		r, err := p.parsePathFactor()
		if err != nil {
			return nil, err
		}
		l = Concat{L: l, R: r}
	}
	return l, nil
}

func (p *gxParser) parsePathFactor() (Path, error) {
	e, err := p.parsePathAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek() == '*':
			p.pos++
			e = Star{P: e}
		case p.has("_!="):
			p.pos += 3
			e = DataCmp{P: e, Neq: true}
		case p.has("_="):
			p.pos += 2
			e = DataCmp{P: e}
		default:
			return e, nil
		}
	}
}

func (p *gxParser) parsePathAtom() (Path, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		e, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("gxpath: expected ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	case '~':
		p.pos++
		if p.peek() != '(' {
			return nil, fmt.Errorf("gxpath: expected '(' after '~' at %d", p.pos)
		}
		p.pos++
		e, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("gxpath: expected ')' at %d", p.pos)
		}
		p.pos++
		return Complement{P: e}, nil
	case '[':
		p.pos++
		n, err := p.parseNodeOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ']' {
			return nil, fmt.Errorf("gxpath: expected ']' at %d", p.pos)
		}
		p.pos++
		return Test{N: n}, nil
	default:
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("gxpath: expected path atom at %d: %q", p.pos, p.in[p.pos:])
		}
		if name == "eps" {
			return Eps{}, nil
		}
		if name == "u" {
			return nil, fmt.Errorf("gxpath: 'u' is the union operator, not a label (at %d)", p.pos)
		}
		if p.has("^-") {
			p.pos += 2
			return Label{A: name, Inv: true}, nil
		}
		return Label{A: name}, nil
	}
}

func (p *gxParser) parseNodeOr() (Node, error) {
	l, err := p.parseNodeAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		r, err := p.parseNodeAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *gxParser) parseNodeAnd() (Node, error) {
	l, err := p.parseNodeAtom()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		r, err := p.parseNodeAtom()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *gxParser) parseNodeAtom() (Node, error) {
	switch p.peek() {
	case '!':
		p.pos++
		n, err := p.parseNodeAtom()
		if err != nil {
			return nil, err
		}
		return Not{N: n}, nil
	case '(':
		p.pos++
		n, err := p.parseNodeOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("gxpath: expected ')' at %d", p.pos)
		}
		p.pos++
		return n, nil
	case '<':
		p.pos++
		l, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		var neq, isTest bool
		switch {
		case p.has("!="):
			p.pos += 2
			neq, isTest = true, true
		case p.peek() == '=':
			p.pos++
			isTest = true
		}
		if !isTest {
			if p.peek() != '>' {
				return nil, fmt.Errorf("gxpath: expected '>' at %d", p.pos)
			}
			p.pos++
			return Diamond{P: l}, nil
		}
		r, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != '>' {
			return nil, fmt.Errorf("gxpath: expected '>' at %d", p.pos)
		}
		p.pos++
		return DataTest{L: l, R: r, Neq: neq}, nil
	default:
		p.skip()
		if p.pos < len(p.in) && p.in[p.pos] == 'T' &&
			(p.pos+1 == len(p.in) || !isGXIdent(p.in[p.pos+1])) {
			p.pos++
			return Top{}, nil
		}
		return nil, fmt.Errorf("gxpath: expected node formula at %d: %q", p.pos, p.in[p.pos:])
	}
}
