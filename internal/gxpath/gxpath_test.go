package gxpath

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/triplestore"
)

func sample() *graph.Graph {
	g := graph.New()
	g.AddEdge("v1", "a", "v2")
	g.AddEdge("v2", "b", "v3")
	g.AddEdge("v3", "a", "v1")
	g.SetValue("v1", triplestore.V("red"))
	g.SetValue("v2", triplestore.V("blue"))
	g.SetValue("v3", triplestore.V("red"))
	return g
}

func has(r Rel, u, v string) bool { return r[[2]string{u, v}] }

func TestPathBasics(t *testing.T) {
	g := sample()
	if r := EvalPath(Label{A: "a"}, g); len(r) != 2 || !has(r, "v1", "v2") || !has(r, "v3", "v1") {
		t.Errorf("a = %v", r.Pairs())
	}
	if r := EvalPath(Label{A: "a", Inv: true}, g); !has(r, "v2", "v1") || len(r) != 2 {
		t.Errorf("a⁻ = %v", r.Pairs())
	}
	if r := EvalPath(Eps{}, g); len(r) != 3 || !has(r, "v2", "v2") {
		t.Errorf("ε = %v", r.Pairs())
	}
	if r := EvalPath(Concat{L: Label{A: "a"}, R: Label{A: "b"}}, g); len(r) != 1 || !has(r, "v1", "v3") {
		t.Errorf("a·b = %v", r.Pairs())
	}
	if r := EvalPath(Union{L: Label{A: "a"}, R: Label{A: "b"}}, g); len(r) != 3 {
		t.Errorf("a∪b = %v", r.Pairs())
	}
}

func TestPathComplement(t *testing.T) {
	g := sample()
	r := EvalPath(Complement{P: Label{A: "a"}}, g)
	// 9 pairs total, 2 are a-edges.
	if len(r) != 7 || has(r, "v1", "v2") || !has(r, "v2", "v1") {
		t.Errorf("ā = %v", r.Pairs())
	}
}

func TestPathStarReflexive(t *testing.T) {
	g := sample() // cycle v1→v2→v3→v1
	r := EvalPath(Star{P: Union{L: Label{A: "a"}, R: Label{A: "b"}}}, g)
	if len(r) != 9 {
		t.Errorf("(a∪b)* = %v, want all 9 pairs", r.Pairs())
	}
	// Star of the empty relation is just the diagonal.
	empty := EvalPath(Star{P: Label{A: "zzz"}}, g)
	if len(empty) != 3 || !has(empty, "v1", "v1") {
		t.Errorf("zzz* = %v", empty.Pairs())
	}
}

func TestNodeFormulas(t *testing.T) {
	g := sample()
	if s := EvalNode(Top{}, g); len(s) != 3 {
		t.Errorf("⊤ = %v", s)
	}
	// ⟨b⟩: nodes with an outgoing b-edge.
	if s := EvalNode(Diamond{P: Label{A: "b"}}, g); len(s) != 1 || !s["v2"] {
		t.Errorf("⟨b⟩ = %v", s)
	}
	if s := EvalNode(Not{N: Diamond{P: Label{A: "b"}}}, g); len(s) != 2 || s["v2"] {
		t.Errorf("¬⟨b⟩ = %v", s)
	}
	and := And{L: Diamond{P: Label{A: "a"}}, R: Diamond{P: Label{A: "b"}}}
	if s := EvalNode(and, g); len(s) != 0 {
		t.Errorf("⟨a⟩∧⟨b⟩ = %v", s)
	}
	or := Or{L: Diamond{P: Label{A: "a"}}, R: Diamond{P: Label{A: "b"}}}
	if s := EvalNode(or, g); len(s) != 3 {
		t.Errorf("⟨a⟩∨⟨b⟩ = %v", s)
	}
}

func TestTest(t *testing.T) {
	g := sample()
	// a·[⟨b⟩]: a-edges into nodes that have a b-successor.
	p := Concat{L: Label{A: "a"}, R: Test{N: Diamond{P: Label{A: "b"}}}}
	r := EvalPath(p, g)
	if len(r) != 1 || !has(r, "v1", "v2") {
		t.Errorf("a·[⟨b⟩] = %v", r.Pairs())
	}
}

func TestDataCmp(t *testing.T) {
	g := sample()
	// (a·b)₌: v1 →a v2 →b v3 has ρ(v1) = ρ(v3) = red.
	eq := EvalPath(DataCmp{P: Concat{L: Label{A: "a"}, R: Label{A: "b"}}}, g)
	if len(eq) != 1 || !has(eq, "v1", "v3") {
		t.Errorf("(a·b)₌ = %v", eq.Pairs())
	}
	// a≠: of the two a-edges, only v1→v2 (red vs blue) connects different
	// values; v3→v1 connects red to red.
	neq := EvalPath(DataCmp{P: Label{A: "a"}, Neq: true}, g)
	if len(neq) != 1 || !has(neq, "v1", "v2") {
		t.Errorf("a≠ = %v", neq.Pairs())
	}
}

func TestDataTest(t *testing.T) {
	g := sample()
	// ⟨a = a·b⟩: nodes v with an a-successor and an a·b-successor holding
	// equal values. v3: a-successor v1 (red); a·b path v3→v1? a from v3
	// goes to v1, then b? v1 has no b-edge. Use v1: a→v2 (blue), a·b→v3
	// (red): not equal. Construct the working case explicitly:
	h := graph.New()
	h.AddEdge("u", "a", "x")
	h.AddEdge("u", "b", "y")
	h.SetValue("x", triplestore.V("k"))
	h.SetValue("y", triplestore.V("k"))
	n := DataTest{L: Label{A: "a"}, R: Label{A: "b"}}
	if s := EvalNode(n, h); len(s) != 1 || !s["u"] {
		t.Errorf("⟨a = b⟩ = %v", s)
	}
	nn := DataTest{L: Label{A: "a"}, R: Label{A: "b"}, Neq: true}
	if s := EvalNode(nn, h); len(s) != 0 {
		t.Errorf("⟨a ≠ b⟩ = %v", s)
	}
	_ = g
}

func TestStringRendering(t *testing.T) {
	p := Concat{L: Label{A: "a"}, R: Complement{P: Star{P: Label{A: "b", Inv: true}}}}
	if got := p.String(); got != "(a.~(b^-*))" {
		t.Errorf("String = %q", got)
	}
	n := DataTest{L: Label{A: "a"}, R: Eps{}, Neq: true}
	if got := n.String(); got != "<a != eps>" {
		t.Errorf("String = %q", got)
	}
}
