package gxpath

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/triplestore"
)

func randGraphQ(rng *rand.Rand, nNodes, nEdges int) *graph.Graph {
	g := graph.New()
	for g.NumEdges() < nEdges {
		g.AddEdge(
			string(rune('A'+rng.Intn(nNodes))),
			string(rune('a'+rng.Intn(2))),
			string(rune('A'+rng.Intn(nNodes))))
	}
	for _, v := range g.Nodes() {
		g.SetValue(v, triplestore.V(string(rune('u'+rng.Intn(2)))))
	}
	return g
}

func randPathQ(rng *rand.Rand, depth int) Path {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Eps{}
		case 1:
			return Label{A: string(rune('a' + rng.Intn(2)))}
		default:
			return Label{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return randPathQ(rng, 0)
	case 1:
		return Concat{L: randPathQ(rng, depth-1), R: randPathQ(rng, depth-1)}
	case 2:
		return Union{L: randPathQ(rng, depth-1), R: randPathQ(rng, depth-1)}
	case 3:
		return Star{P: randPathQ(rng, depth-1)}
	case 4:
		return Complement{P: randPathQ(rng, depth-1)}
	case 5:
		return Test{N: Diamond{P: randPathQ(rng, depth-1)}}
	default:
		return DataCmp{P: randPathQ(rng, depth-1), Neq: rng.Intn(2) == 0}
	}
}

// TestDoubleComplement: over the full node universe, complement is an
// involution — the property the algebra's closure makes available to
// GXPath but not to CNREs (Theorem 8's monotonicity argument).
func TestDoubleComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		p := randPathQ(rng, 2)
		once := EvalPath(p, g)
		twice := EvalPath(Complement{P: Complement{P: p}}, g)
		if !once.Equal(twice) {
			t.Fatalf("double complement differs for %s", p)
		}
	}
}

// TestComplementPartition: α and ᾱ partition V×V.
func TestComplementPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		p := randPathQ(rng, 2)
		pos := EvalPath(p, g)
		neg := EvalPath(Complement{P: p}, g)
		n := g.NumNodes()
		if len(pos)+len(neg) != n*n {
			t.Fatalf("|α| + |ᾱ| = %d + %d ≠ %d² for %s", len(pos), len(neg), n, p)
		}
		for pr := range pos {
			if neg[pr] {
				t.Fatalf("pair %v in both α and ᾱ for %s", pr, p)
			}
		}
	}
}

// TestDataCmpPartition: α₌ and α≠ partition α.
func TestDataCmpPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		p := randPathQ(rng, 2)
		all := EvalPath(p, g)
		eq := EvalPath(DataCmp{P: p}, g)
		neq := EvalPath(DataCmp{P: p, Neq: true}, g)
		if len(eq)+len(neq) != len(all) {
			t.Fatalf("α₌ + α≠ ≠ α for %s", p)
		}
		for pr := range eq {
			if neq[pr] || !all[pr] {
				t.Fatalf("data partition broken at %v for %s", pr, p)
			}
		}
	}
}

// TestDeMorgan: ¬(ϕ∧ψ) = ¬ϕ∨¬ψ over node formulas.
func TestDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		phi := Diamond{P: randPathQ(rng, 2)}
		psi := Diamond{P: randPathQ(rng, 2)}
		l := EvalNode(Not{N: And{L: phi, R: psi}}, g)
		r := EvalNode(Or{L: Not{N: phi}, R: Not{N: psi}}, g)
		if len(l) != len(r) {
			t.Fatalf("De Morgan sizes differ")
		}
		for v := range l {
			if !r[v] {
				t.Fatalf("De Morgan differs at %s", v)
			}
		}
	}
}

// TestDiamondMatchesTestDiagonal: ⟨α⟩ holds exactly on the diagonal of
// [⟨α⟩].
func TestDiamondMatchesTestDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for i := 0; i < 60; i++ {
		g := randGraphQ(rng, 4, 6)
		p := randPathQ(rng, 2)
		set := EvalNode(Diamond{P: p}, g)
		diag := EvalPath(Test{N: Diamond{P: p}}, g)
		if len(set) != len(diag) {
			t.Fatalf("sizes differ for %s", p)
		}
		for v := range set {
			if !diag[[2]string{v, v}] {
				t.Fatalf("diagonal missing %s", v)
			}
		}
	}
}
