// Package gxpath implements GXPath, the graph adaptation of XPath used as
// the yardstick graph language in §6.2 of the TriAL paper (after Libkin,
// Martens & Vrgoč, ICDT 2013). Node formulas and path formulas are defined
// by mutual recursion:
//
//	ϕ, ψ := ⊤ | ¬ϕ | ϕ∧ψ | ϕ∨ψ | ⟨α⟩ | ⟨α = β⟩ | ⟨α ≠ β⟩
//	α, β := ε | a | a⁻ | [ϕ] | α·β | α∪β | ᾱ | α* | α₌ | α≠
//
// The data comparisons (the last two node forms and the subscripted path
// forms) constitute GXPath(∼) of §6.2.2; the purely navigational language
// omits them. Path formulas denote binary relations over nodes, node
// formulas denote sets of nodes; the complement ᾱ is V×V minus α.
package gxpath
