package nre

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
)

func lineGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge("v1", "a", "v2")
	g.AddEdge("v2", "b", "v3")
	g.AddEdge("v3", "a", "v4")
	return g
}

func has(r Rel, u, v string) bool { return r[[2]string{u, v}] }

func TestLabelAndInverse(t *testing.T) {
	g := lineGraph()
	st := GraphStructure{G: g}
	a := Eval(Label{A: "a"}, st)
	if !has(a, "v1", "v2") || !has(a, "v3", "v4") || has(a, "v2", "v3") {
		t.Errorf("a = %v", a.Pairs())
	}
	inv := Eval(Label{A: "a", Inv: true}, st)
	if !has(inv, "v2", "v1") || has(inv, "v1", "v2") {
		t.Errorf("a⁻ = %v", inv.Pairs())
	}
}

func TestEpsilonAndConcat(t *testing.T) {
	g := lineGraph()
	st := GraphStructure{G: g}
	eps := Eval(Epsilon{}, st)
	if len(eps) != 4 || !has(eps, "v2", "v2") {
		t.Errorf("ε = %v", eps.Pairs())
	}
	ab := Eval(Concat{L: Label{A: "a"}, R: Label{A: "b"}}, st)
	if len(ab) != 1 || !has(ab, "v1", "v3") {
		t.Errorf("a·b = %v", ab.Pairs())
	}
}

func TestUnionStar(t *testing.T) {
	g := lineGraph()
	st := GraphStructure{G: g}
	anyLabel := Union{L: Label{A: "a"}, R: Label{A: "b"}}
	star := Eval(Star{E: anyLabel}, st)
	// Reflexive-transitive: all 4 diagonal pairs plus all forward pairs.
	if !has(star, "v1", "v4") || !has(star, "v1", "v1") || has(star, "v4", "v1") {
		t.Errorf("(a+b)* = %v", star.Pairs())
	}
	if len(star) != 4+3+2+1 {
		t.Errorf("(a+b)* size = %d, want 10", len(star))
	}
}

func TestNest(t *testing.T) {
	g := lineGraph()
	st := GraphStructure{G: g}
	// [b]: nodes with an outgoing b-edge (as a diagonal).
	n := Eval(Nest{E: Label{A: "b"}}, st)
	if len(n) != 1 || !has(n, "v2", "v2") {
		t.Errorf("[b] = %v", n.Pairs())
	}
	// a·[b]: a-edges ending at a node with an outgoing b-edge.
	e := Eval(Concat{L: Label{A: "a"}, R: Nest{E: Label{A: "b"}}}, st)
	if len(e) != 1 || !has(e, "v1", "v2") {
		t.Errorf("a·[b] = %v", e.Pairs())
	}
}

// TestTripleStructureAxes checks the nSPARQL axis semantics of the
// Theorem 1 proof over the triple representation.
func TestTripleStructureAxes(t *testing.T) {
	d := rdf.NewDocument()
	d.Add("s", "p", "o")
	st := TripleStructure{D: d}
	if got := Eval(Label{A: rdf.LabelNext}, st); !has(got, "s", "o") || len(got) != 1 {
		t.Errorf("next = %v", got.Pairs())
	}
	if got := Eval(Label{A: rdf.LabelEdge}, st); !has(got, "s", "p") || len(got) != 1 {
		t.Errorf("edge = %v", got.Pairs())
	}
	if got := Eval(Label{A: rdf.LabelNode}, st); !has(got, "p", "o") || len(got) != 1 {
		t.Errorf("node = %v", got.Pairs())
	}
	nodes := st.Nodes()
	if len(nodes) != 3 {
		t.Errorf("nodes = %v", nodes)
	}
}

// TestNREOverSigmaEqualsTripleSemantics: evaluating an NRE over σ(D) as a
// graph agrees with the TripleStructure semantics — the point made in the
// Theorem 1 proof (the nSPARQL semantics "is essentially given according
// to the translation σ(·)").
func TestNREOverSigmaEqualsTripleSemantics(t *testing.T) {
	d := rdf.NewDocument()
	d.Add("s", "p", "o")
	d.Add("p", "q", "r")
	d.Add("o", "p2", "s")
	sigma := GraphStructure{G: d.Sigma()}
	triples := TripleStructure{D: d}
	exprs := []Expr{
		Label{A: rdf.LabelNext},
		Label{A: rdf.LabelEdge},
		Label{A: rdf.LabelNode},
		Concat{L: Label{A: rdf.LabelEdge}, R: Label{A: rdf.LabelNode}},
		Star{E: Label{A: rdf.LabelNext}},
		Nest{E: Label{A: rdf.LabelEdge}},
		Union{L: Label{A: rdf.LabelNext, Inv: true}, R: Label{A: rdf.LabelNode}},
	}
	for _, e := range exprs {
		a := Eval(e, sigma)
		b := Eval(e, triples)
		if !a.Equal(b) {
			t.Errorf("%s: σ-graph %v vs triple semantics %v", e, a.Pairs(), b.Pairs())
		}
	}
}

func TestCNREEval(t *testing.T) {
	g := graph.New()
	g.AddEdge("u", "a", "v")
	g.AddEdge("v", "b", "w")
	g.AddEdge("u", "a", "w")
	st := GraphStructure{G: g}
	// (x, y): ∃z x –a→ z ∧ z –b→ y
	q := &CNRE{
		Free: []string{"x", "y"},
		Atoms: []CAtom{
			{X: "x", Y: "z", E: Label{A: "a"}},
			{X: "z", Y: "y", E: Label{A: "b"}},
		},
	}
	got := AnswerTuples(q, st)
	if len(got) != 1 || got[0][0] != "u" || got[0][1] != "w" {
		t.Errorf("answers = %v", got)
	}
}

func TestCNRECorrelation(t *testing.T) {
	// Shared existential variable must be the *same* witness in both atoms.
	g := graph.New()
	g.AddEdge("u", "a", "m1")
	g.AddEdge("m2", "b", "w")
	g.AddNode("m1")
	g.AddNode("m2")
	st := GraphStructure{G: g}
	q := &CNRE{
		Free: []string{"x", "y"},
		Atoms: []CAtom{
			{X: "x", Y: "z", E: Label{A: "a"}},
			{X: "z", Y: "y", E: Label{A: "b"}},
		},
	}
	if got := AnswerTuples(q, st); len(got) != 0 {
		t.Errorf("uncorrelated witnesses accepted: %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := Concat{L: Label{A: "a"}, R: Nest{E: Star{E: Union{L: Label{A: "b", Inv: true}, R: Epsilon{}}}}}
	want := "(a·[(b⁻+ε)*])"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
