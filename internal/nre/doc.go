// Package nre implements nested regular expressions (NREs) as defined in
// §2.1 of the TriAL paper (after Pérez, Arenas & Gutierrez's nSPARQL):
//
//	e := ε | a | a⁻ | e·e | e* | e + e | [e]
//
// An NRE denotes a binary relation over the nodes of a graph database.
// The package evaluates NREs both over ordinary graphs and over the
// nSPARQL triple semantics of the Theorem 1 proof, in which the alphabet
// is {next, edge, node} and, for a ternary relation E,
//
//	next = {(v, v′) | ∃z E(v, z, v′)}
//	edge = {(v, v′) | ∃z E(v, v′, z)}
//	node = {(v, v′) | ∃z E(z, v, v′)}
//
// Conjunctive NREs (CNREs, §6.2.1) are provided in cnre.go.
package nre
