package nre

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the textual NRE syntax, which round-trips the String
// renderings of this package (ASCII alternatives accepted):
//
//	expr   := cat ('+' cat)*                union
//	cat    := factor (('·' | '.') factor)*  concatenation
//	factor := atom '*'*
//	atom   := 'ε' | 'eps' | label ['⁻' | '^-']
//	        | '[' expr ']'                  nesting (node test)
//	        | '(' expr ')'
//
// Labels are bare identifiers (letters, digits, '_', '-', ':', '#');
// the name 'eps' is reserved by the grammar.
func Parse(input string) (Expr, error) {
	p := &nreParser{in: input}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("nre: trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

// MustParse is Parse, panicking on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type nreParser struct {
	in  string
	pos int
}

func (p *nreParser) skip() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *nreParser) peek() byte {
	p.skip()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *nreParser) has(s string) bool {
	p.skip()
	return strings.HasPrefix(p.in[p.pos:], s)
}

func (p *nreParser) parseUnion() (Expr, error) {
	l, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '+' {
		p.pos++
		r, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		l = Union{L: l, R: r}
	}
	return l, nil
}

func (p *nreParser) parseCat() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.has("·"):
			p.pos += len("·")
		case p.peek() == '.':
			p.pos++
		default:
			return l, nil
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Concat{L: l, R: r}
	}
}

func (p *nreParser) parseFactor() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek() == '*' {
		p.pos++
		e = Star{E: e}
	}
	return e, nil
}

func (p *nreParser) parseAtom() (Expr, error) {
	switch p.peek() {
	case '(':
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("nre: expected ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	case '[':
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ']' {
			return nil, fmt.Errorf("nre: expected ']' at %d", p.pos)
		}
		p.pos++
		return Nest{E: e}, nil
	}
	if p.has("ε") {
		p.pos += len("ε")
		return Epsilon{}, nil
	}
	start := p.pos
	for p.pos < len(p.in) && isNREIdent(p.in[p.pos]) {
		p.pos++
	}
	name := p.in[start:p.pos]
	if name == "" {
		return nil, fmt.Errorf("nre: expected atom at %d: %q", p.pos, p.in[p.pos:])
	}
	if name == "eps" {
		return Epsilon{}, nil
	}
	if p.has("⁻") {
		p.pos += len("⁻")
		return Label{A: name, Inv: true}, nil
	}
	if p.has("^-") {
		p.pos += 2
		return Label{A: name, Inv: true}, nil
	}
	return Label{A: name}, nil
}

func isNREIdent(c byte) bool {
	return c == '_' || c == '-' || c == ':' || c == '#' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
