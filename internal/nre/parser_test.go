package nre

import (
	"math/rand"
	"testing"
)

func TestParseExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{"eps", Epsilon{}},
		{"ε", Epsilon{}},
		{"a", Label{A: "a"}},
		{"part_of", Label{A: "part_of"}},
		{"a^-", Label{A: "a", Inv: true}},
		{"a⁻", Label{A: "a", Inv: true}},
		{"a.b", Concat{L: Label{A: "a"}, R: Label{A: "b"}}},
		{"a·b", Concat{L: Label{A: "a"}, R: Label{A: "b"}}},
		{"a+b", Union{L: Label{A: "a"}, R: Label{A: "b"}}},
		{"a*", Star{E: Label{A: "a"}}},
		{"[a]", Nest{E: Label{A: "a"}}},
		{"(a+b)·c*", Concat{
			L: Union{L: Label{A: "a"}, R: Label{A: "b"}},
			R: Star{E: Label{A: "c"}}}},
		{"[a·[b]]*", Star{E: Nest{E: Concat{L: Label{A: "a"}, R: Nest{E: Label{A: "b"}}}}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want.String() {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(", "(a", "[a", "a+", "a.", "*", "+", "a)b"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

// TestParseRoundTrip: parsing the String rendering of random expressions
// reproduces the expression.
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 500; i++ {
		e := randNREQ(rng, 3)
		got, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e, err)
		}
		if got.String() != e.String() {
			t.Fatalf("round trip changed %q to %q", e, got)
		}
	}
}
