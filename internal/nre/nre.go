package nre

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rdf"
)

// Expr is a nested regular expression.
type Expr interface {
	String() string
	isNRE()
}

// Epsilon is ε, the diagonal relation.
type Epsilon struct{}

// Label is a, or its inverse a⁻ when Inv is set.
type Label struct {
	A   string
	Inv bool
}

// Concat is e·e.
type Concat struct{ L, R Expr }

// Union is e + e.
type Union struct{ L, R Expr }

// Star is e*, the reflexive-transitive closure.
type Star struct{ E Expr }

// Nest is the node test [e] of XPath: pairs (u, u) such that (u, v) is in
// e for some v.
type Nest struct{ E Expr }

func (Epsilon) isNRE() {}
func (Label) isNRE()   {}
func (Concat) isNRE()  {}
func (Union) isNRE()   {}
func (Star) isNRE()    {}
func (Nest) isNRE()    {}

func (Epsilon) String() string { return "ε" }
func (l Label) String() string {
	if l.Inv {
		return l.A + "⁻"
	}
	return l.A
}
func (c Concat) String() string { return "(" + c.L.String() + "·" + c.R.String() + ")" }
func (u Union) String() string  { return "(" + u.L.String() + "+" + u.R.String() + ")" }
func (s Star) String() string   { return s.E.String() + "*" }
func (n Nest) String() string   { return "[" + n.E.String() + "]" }

// Structure is the interface NREs are evaluated over: a universe of nodes
// and, for each alphabet symbol, a binary edge relation.
type Structure interface {
	// Nodes returns the universe, sorted.
	Nodes() []string
	// Edges returns the pairs related by label a (not its inverse).
	Edges(a string) [][2]string
}

// Rel is a binary relation over node names.
type Rel map[[2]string]bool

// Pairs returns the relation's pairs, sorted.
func (r Rel) Pairs() [][2]string {
	out := make([][2]string, 0, len(r))
	for p := range r {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Equal reports relation equality.
func (r Rel) Equal(s Rel) bool {
	if len(r) != len(s) {
		return false
	}
	for p := range r {
		if !s[p] {
			return false
		}
	}
	return true
}

// Eval computes the binary relation denoted by e over st.
func Eval(e Expr, st Structure) Rel {
	switch x := e.(type) {
	case Epsilon:
		out := Rel{}
		for _, v := range st.Nodes() {
			out[[2]string{v, v}] = true
		}
		return out
	case Label:
		out := Rel{}
		for _, p := range st.Edges(x.A) {
			if x.Inv {
				out[[2]string{p[1], p[0]}] = true
			} else {
				out[p] = true
			}
		}
		return out
	case Concat:
		return compose(Eval(x.L, st), Eval(x.R, st))
	case Union:
		l := Eval(x.L, st)
		for p := range Eval(x.R, st) {
			l[p] = true
		}
		return l
	case Star:
		return closure(Eval(x.E, st), st.Nodes())
	case Nest:
		inner := Eval(x.E, st)
		out := Rel{}
		for p := range inner {
			out[[2]string{p[0], p[0]}] = true
		}
		return out
	}
	return Rel{}
}

func compose(a, b Rel) Rel {
	right := map[string][]string{}
	for p := range b {
		right[p[0]] = append(right[p[0]], p[1])
	}
	out := Rel{}
	for p := range a {
		for _, w := range right[p[1]] {
			out[[2]string{p[0], w}] = true
		}
	}
	return out
}

// closure computes the reflexive-transitive closure of r over the node
// universe.
func closure(r Rel, nodes []string) Rel {
	adj := map[string][]string{}
	for p := range r {
		adj[p[0]] = append(adj[p[0]], p[1])
	}
	out := Rel{}
	for _, src := range nodes {
		visited := map[string]bool{src: true}
		queue := []string{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			out[[2]string{src, v}] = true
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return out
}

// GraphStructure adapts a graph database for NRE evaluation.
type GraphStructure struct{ G *graph.Graph }

// Nodes implements Structure.
func (s GraphStructure) Nodes() []string { return s.G.Nodes() }

// Edges implements Structure.
func (s GraphStructure) Edges(a string) [][2]string {
	var out [][2]string
	for _, e := range s.G.Edges() {
		if e.Label == a {
			out = append(out, [2]string{e.Src, e.Dst})
		}
	}
	return out
}

// TripleStructure adapts an RDF document for the nSPARQL semantics of the
// Theorem 1 proof: the alphabet is {next, edge, node} over the document's
// resources.
type TripleStructure struct{ D *rdf.Document }

// Nodes implements Structure: all resources of the document.
func (s TripleStructure) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range s.D.Triples() {
		for _, v := range []string{t.S, t.P, t.O} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Edges implements Structure.
func (s TripleStructure) Edges(a string) [][2]string {
	var out [][2]string
	for _, t := range s.D.Triples() {
		switch a {
		case rdf.LabelNext:
			out = append(out, [2]string{t.S, t.O})
		case rdf.LabelEdge:
			out = append(out, [2]string{t.S, t.P})
		case rdf.LabelNode:
			out = append(out, [2]string{t.P, t.O})
		}
	}
	return out
}
