package nre

import (
	"fmt"
	"sort"
	"strings"
)

// CNRE is a conjunctive nested regular expression (§6.2.1):
//
//	ϕ(x̄) = ∃ȳ ⋀ᵢ (xᵢ --eᵢ--> yᵢ)
//
// where every conjunct relates two variables (free or existential) by an
// NRE. Free lists the output variables in order; a satisfying assignment
// projects to a tuple over Free.
type CNRE struct {
	Free  []string
	Atoms []CAtom
}

// CAtom is one conjunct: X --E--> Y.
type CAtom struct {
	X, Y string
	E    Expr
}

func (c *CNRE) String() string {
	var parts []string
	for _, a := range c.Atoms {
		parts = append(parts, fmt.Sprintf("(%s -%s-> %s)", a.X, a.E, a.Y))
	}
	return "(" + strings.Join(c.Free, ",") + "): " + strings.Join(parts, " ∧ ")
}

// Vars returns all variables of the query (free first, then existential,
// each once).
func (c *CNRE) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range c.Free {
		add(v)
	}
	for _, a := range c.Atoms {
		add(a.X)
		add(a.Y)
	}
	return out
}

// EvalCNRE computes the answers of the query over the structure: the set
// of tuples (one value per free variable, in order). Evaluation first
// materializes each atom's NRE relation, then backtracks over variable
// assignments, most-constrained-variable first.
func EvalCNRE(c *CNRE, st Structure) map[string][]string {
	rels := make([]Rel, len(c.Atoms))
	for i, a := range c.Atoms {
		rels[i] = Eval(a.E, st)
	}
	nodes := st.Nodes()
	vars := c.Vars()
	env := map[string]string{}
	answers := map[string][]string{}

	var rec func(k int)
	rec = func(k int) {
		if k == len(vars) {
			tuple := make([]string, len(c.Free))
			for i, v := range c.Free {
				tuple[i] = env[v]
			}
			answers[strings.Join(tuple, "\x00")] = tuple
			return
		}
		v := vars[k]
		for _, val := range nodes {
			env[v] = val
			ok := true
			for i, a := range c.Atoms {
				x, xb := env[a.X]
				y, yb := env[a.Y]
				if !xb || !yb {
					continue // atom not fully grounded yet
				}
				if !rels[i][[2]string{x, y}] {
					ok = false
					break
				}
			}
			if ok {
				rec(k + 1)
			}
		}
		delete(env, v)
	}
	rec(0)
	return answers
}

// AnswerTuples returns EvalCNRE's answers as sorted tuples.
func AnswerTuples(c *CNRE, st Structure) [][]string {
	m := EvalCNRE(c, st)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
