package nre

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randGraphQ(rng *rand.Rand, nNodes, nEdges int) *graph.Graph {
	g := graph.New()
	for g.NumEdges() < nEdges {
		g.AddEdge(
			string(rune('A'+rng.Intn(nNodes))),
			string(rune('a'+rng.Intn(2))),
			string(rune('A'+rng.Intn(nNodes))))
	}
	return g
}

func randNREQ(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Epsilon{}
		case 1:
			return Label{A: string(rune('a' + rng.Intn(2)))}
		default:
			return Label{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return randNREQ(rng, 0)
	case 1:
		return Concat{L: randNREQ(rng, depth-1), R: randNREQ(rng, depth-1)}
	case 2:
		return Union{L: randNREQ(rng, depth-1), R: randNREQ(rng, depth-1)}
	case 3:
		return Star{E: randNREQ(rng, depth-1)}
	default:
		return Nest{E: randNREQ(rng, depth-1)}
	}
}

// TestStarIdempotent: (e*)* = e* — a defining property of reflexive-
// transitive closure.
func TestStarIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		st := GraphStructure{G: g}
		e := randNREQ(rng, 2)
		once := Eval(Star{E: e}, st)
		twice := Eval(Star{E: Star{E: e}}, st)
		if !once.Equal(twice) {
			t.Fatalf("(e*)* ≠ e* for %s", e)
		}
	}
}

// TestUnionCommutative and concat associativity through evaluation.
func TestAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		st := GraphStructure{G: g}
		a, b, c := randNREQ(rng, 2), randNREQ(rng, 2), randNREQ(rng, 2)
		if !Eval(Union{L: a, R: b}, st).Equal(Eval(Union{L: b, R: a}, st)) {
			t.Fatalf("union not commutative: %s, %s", a, b)
		}
		l := Eval(Concat{L: Concat{L: a, R: b}, R: c}, st)
		r := Eval(Concat{L: a, R: Concat{L: b, R: c}}, st)
		if !l.Equal(r) {
			t.Fatalf("concat not associative: %s, %s, %s", a, b, c)
		}
		// ε is a two-sided identity for concat.
		if !Eval(Concat{L: Epsilon{}, R: a}, st).Equal(Eval(a, st)) {
			t.Fatalf("ε·e ≠ e for %s", a)
		}
		if !Eval(Concat{L: a, R: Epsilon{}}, st).Equal(Eval(a, st)) {
			t.Fatalf("e·ε ≠ e for %s", a)
		}
	}
}

// TestNestProperties: [e] is a subset of the diagonal, and [[e]] = [e].
func TestNestProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 100; i++ {
		g := randGraphQ(rng, 4, 6)
		st := GraphStructure{G: g}
		e := randNREQ(rng, 2)
		n := Eval(Nest{E: e}, st)
		for p := range n {
			if p[0] != p[1] {
				t.Fatalf("[%s] produced non-diagonal pair %v", e, p)
			}
		}
		if !Eval(Nest{E: Nest{E: e}}, st).Equal(n) {
			t.Fatalf("[[e]] ≠ [e] for %s", e)
		}
	}
}

// TestInverseInvolution: (a⁻)⁻ = a via double inversion of the relation.
func TestInverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for i := 0; i < 50; i++ {
		g := randGraphQ(rng, 4, 6)
		st := GraphStructure{G: g}
		fwd := Eval(Label{A: "a"}, st)
		inv := Eval(Label{A: "a", Inv: true}, st)
		if len(fwd) != len(inv) {
			t.Fatal("inverse changed cardinality")
		}
		for p := range fwd {
			if !inv[[2]string{p[1], p[0]}] {
				t.Fatalf("inverse missing %v", p)
			}
		}
	}
}
