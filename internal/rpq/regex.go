package rpq

import (
	"fmt"
	"strings"
	"unicode"
)

// Regex is a regular expression over edge labels.
type Regex interface {
	String() string
	isRegex()
}

// Eps matches the empty path.
type Eps struct{}

// Sym matches one edge labeled A, traversed backwards when Inv is set
// (the a⁻ of 2RPQs).
type Sym struct {
	A   string
	Inv bool
}

// Cat is concatenation.
type Cat struct{ L, R Regex }

// Alt is alternation.
type Alt struct{ L, R Regex }

// Star is zero-or-more repetition.
type Star struct{ E Regex }

// Plus is one-or-more repetition.
type Plus struct{ E Regex }

// Opt is zero-or-one.
type Opt struct{ E Regex }

func (Eps) isRegex()  {}
func (Sym) isRegex()  {}
func (Cat) isRegex()  {}
func (Alt) isRegex()  {}
func (Star) isRegex() {}
func (Plus) isRegex() {}
func (Opt) isRegex()  {}

func (Eps) String() string { return "()" }
func (s Sym) String() string {
	name := s.A
	if needsQuote(name) {
		name = "<" + name + ">"
	}
	if s.Inv {
		return name + "^-"
	}
	return name
}
func (c Cat) String() string  { return "(" + c.L.String() + " " + c.R.String() + ")" }
func (a Alt) String() string  { return "(" + a.L.String() + "|" + a.R.String() + ")" }
func (s Star) String() string { return s.E.String() + "*" }
func (p Plus) String() string { return p.E.String() + "+" }
func (o Opt) String() string  { return o.E.String() + "?" }

func needsQuote(s string) bool {
	return s == "" || strings.ContainsAny(s, " ()|*+?<>^")
}

// ParseRegex parses the textual syntax:
//
//	expr   := branch ('|' branch)*
//	branch := factor+                 (juxtaposition = concatenation)
//	factor := atom ('*' | '+' | '?')*
//	atom   := label | label '^-' | '(' expr ')' | '()'
//	label  := bare identifier | '<' anything '>'
func ParseRegex(in string) (Regex, error) {
	p := &reParser{in: in}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("rpq: trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

// MustParseRegex is ParseRegex, panicking on error.
func MustParseRegex(in string) Regex {
	e, err := ParseRegex(in)
	if err != nil {
		panic(err)
	}
	return e
}

type reParser struct {
	in  string
	pos int
}

func (p *reParser) skipSpace() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *reParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *reParser) parseAlt() (Regex, error) {
	l, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		r, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		l = Alt{L: l, R: r}
	}
	return l, nil
}

func (p *reParser) parseCat() (Regex, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c == 0 || c == '|' || c == ')' {
			return l, nil
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Cat{L: l, R: r}
	}
}

func (p *reParser) parseFactor() (Regex, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{E: e}
		case '+':
			p.pos++
			e = Plus{E: e}
		case '?':
			p.pos++
			e = Opt{E: e}
		default:
			return e, nil
		}
	}
}

func (p *reParser) parseAtom() (Regex, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		if p.peek() == ')' {
			p.pos++
			return Eps{}, nil
		}
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: expected ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '<':
		p.pos++
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return nil, fmt.Errorf("rpq: unterminated '<'")
		}
		name := p.in[p.pos : p.pos+end]
		p.pos += end + 1
		return p.maybeInv(name), nil
	case c == 0 || c == ')' || c == '|' || c == '*' || c == '+' || c == '?':
		return nil, fmt.Errorf("rpq: expected atom at %d", p.pos)
	default:
		start := p.pos
		for p.pos < len(p.in) && isLabelByte(p.in[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("rpq: unexpected character %q at %d", p.in[p.pos], p.pos)
		}
		return p.maybeInv(p.in[start:p.pos]), nil
	}
}

func (p *reParser) maybeInv(name string) Regex {
	if p.pos+1 < len(p.in) && p.in[p.pos] == '^' && p.in[p.pos+1] == '-' {
		p.pos += 2
		return Sym{A: name, Inv: true}
	}
	return Sym{A: name}
}

func isLabelByte(c byte) bool {
	return c == '_' || c == '-' || c == ':' || c == '/' || c == '#' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// Labels returns the distinct labels mentioned by the expression.
func Labels(e Regex) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Regex)
	walk = func(e Regex) {
		switch x := e.(type) {
		case Sym:
			if !seen[x.A] {
				seen[x.A] = true
				out = append(out, x.A)
			}
		case Cat:
			walk(x.L)
			walk(x.R)
		case Alt:
			walk(x.L)
			walk(x.R)
		case Star:
			walk(x.E)
		case Plus:
			walk(x.E)
		case Opt:
			walk(x.E)
		}
	}
	walk(e)
	return out
}
