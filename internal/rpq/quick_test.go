package rpq

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randGraphQ(rng *rand.Rand, nNodes, nEdges int) *graph.Graph {
	g := graph.New()
	for g.NumEdges() < nEdges {
		g.AddEdge(
			string(rune('A'+rng.Intn(nNodes))),
			string(rune('a'+rng.Intn(2))),
			string(rune('A'+rng.Intn(nNodes))))
	}
	return g
}

func randRegexQ(rng *rand.Rand, depth int) Regex {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Eps{}
		case 1:
			return Sym{A: string(rune('a' + rng.Intn(2)))}
		default:
			return Sym{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return randRegexQ(rng, 0)
	case 1:
		return Cat{L: randRegexQ(rng, depth-1), R: randRegexQ(rng, depth-1)}
	case 2:
		return Alt{L: randRegexQ(rng, depth-1), R: randRegexQ(rng, depth-1)}
	case 3:
		return Star{E: randRegexQ(rng, depth-1)}
	case 4:
		return Plus{E: randRegexQ(rng, depth-1)}
	default:
		return Opt{E: randRegexQ(rng, depth-1)}
	}
}

func equalRel(a, b map[[2]string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// TestRegexIdentities: classical regular-expression identities hold under
// the NFA evaluation.
func TestRegexIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 120; i++ {
		g := randGraphQ(rng, 4, 7)
		e := randRegexQ(rng, 2)
		// e* = ε | e e*
		lhs := Eval(Star{E: e}, g)
		rhs := Eval(Alt{L: Eps{}, R: Cat{L: e, R: Star{E: e}}}, g)
		if !equalRel(lhs, rhs) {
			t.Fatalf("e* ≠ ε|e·e* for %s", e)
		}
		// e+ = e e*
		if !equalRel(Eval(Plus{E: e}, g), Eval(Cat{L: e, R: Star{E: e}}, g)) {
			t.Fatalf("e+ ≠ e·e* for %s", e)
		}
		// e? = ε | e
		if !equalRel(Eval(Opt{E: e}, g), Eval(Alt{L: Eps{}, R: e}, g)) {
			t.Fatalf("e? ≠ ε|e for %s", e)
		}
		// (e*)* = e*
		if !equalRel(Eval(Star{E: Star{E: e}}, g), lhs) {
			t.Fatalf("(e*)* ≠ e* for %s", e)
		}
	}
}

// TestRoundTripParseRandom: rendering re-parses to an equivalent regex
// (same relation on random graphs).
func TestRoundTripParseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 100; i++ {
		e := randRegexQ(rng, 3)
		s := e.String()
		e2, err := ParseRegex(s)
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		g := randGraphQ(rng, 4, 7)
		if !equalRel(Eval(e, g), Eval(e2, g)) {
			t.Fatalf("reparse changed semantics: %q", s)
		}
	}
}

// TestInverseSwapsEndpoints: the 2RPQ inverse reverses every pair.
func TestInverseSwapsEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 60; i++ {
		g := randGraphQ(rng, 4, 7)
		fwd := Eval(Sym{A: "a"}, g)
		inv := Eval(Sym{A: "a", Inv: true}, g)
		if len(fwd) != len(inv) {
			t.Fatal("inverse changed cardinality")
		}
		for p := range fwd {
			if !inv[[2]string{p[1], p[0]}] {
				t.Fatalf("inverse missing %v", p)
			}
		}
	}
}
