package rpq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// CRPQ is a conjunctive regular path query (§6.2.1):
//
//	ϕ(x̄) = ∃ȳ ⋀ᵢ (xᵢ →Lᵢ yᵢ)
//
// When the regular expressions use inverses, this is a C2RPQ.
type CRPQ struct {
	Free  []string
	Atoms []Atom
}

// Atom is one conjunct X →E Y.
type Atom struct {
	X, Y string
	E    Regex
}

func (q *CRPQ) String() string {
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, fmt.Sprintf("(%s -%s-> %s)", a.X, a.E, a.Y))
	}
	return "(" + strings.Join(q.Free, ",") + "): " + strings.Join(parts, " ∧ ")
}

// Vars returns the variables, free first, each once.
func (q *CRPQ) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Free {
		add(v)
	}
	for _, a := range q.Atoms {
		add(a.X)
		add(a.Y)
	}
	return out
}

// EvalCRPQ computes the answers over a graph: each atom's RPQ relation is
// materialized, then assignments are enumerated by backtracking.
func EvalCRPQ(q *CRPQ, g *graph.Graph) [][]string {
	rels := make([]map[[2]string]bool, len(q.Atoms))
	for i, a := range q.Atoms {
		rels[i] = Eval(a.E, g)
	}
	nodes := g.Nodes()
	vars := q.Vars()
	env := map[string]string{}
	answers := map[string][]string{}

	var rec func(k int)
	rec = func(k int) {
		if k == len(vars) {
			tuple := make([]string, len(q.Free))
			for i, v := range q.Free {
				tuple[i] = env[v]
			}
			answers[strings.Join(tuple, "\x00")] = tuple
			return
		}
		v := vars[k]
		for _, val := range nodes {
			env[v] = val
			ok := true
			for i, a := range q.Atoms {
				x, xb := env[a.X]
				y, yb := env[a.Y]
				if !xb || !yb {
					continue
				}
				if !rels[i][[2]string{x, y}] {
					ok = false
					break
				}
			}
			if ok {
				rec(k + 1)
			}
		}
		delete(env, v)
	}
	rec(0)

	keys := make([]string, 0, len(answers))
	for k := range answers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, answers[k])
	}
	return out
}

// Clique returns the CRPQ asserting the existence of a k-clique over
// a-labeled edges (every pair of the k existential variables connected in
// both directions). The 7-clique instance witnesses that CNREs/CRPQs can
// express properties beyond L⁶∞ω, hence beyond TriAL* (Theorem 8).
func Clique(k int, label string) *CRPQ {
	q := &CRPQ{}
	vars := make([]string, k)
	for i := range vars {
		vars[i] = fmt.Sprintf("y%d", i)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			q.Atoms = append(q.Atoms,
				Atom{X: vars[i], Y: vars[j], E: Sym{A: label}},
				Atom{X: vars[j], Y: vars[i], E: Sym{A: label}},
			)
		}
	}
	return q
}
