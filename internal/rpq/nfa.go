package rpq

// NFA is a Thompson-construction nondeterministic finite automaton over
// edge labels. Transitions carry a label and a direction (Inv traverses an
// edge backwards); epsilon transitions have Eps set.
type NFA struct {
	Start, Accept int
	NumStates     int
	Trans         []Transition
}

// Transition is one NFA transition.
type Transition struct {
	From, To int
	Label    string
	Inv      bool
	Eps      bool
}

// Compile builds an NFA recognizing the language of e, by the standard
// Thompson construction (one start, one accept, ε-transitions glue the
// parts).
func Compile(e Regex) *NFA {
	b := &nfaBuilder{}
	start, accept := b.build(e)
	return &NFA{Start: start, Accept: accept, NumStates: b.n, Trans: b.trans}
}

type nfaBuilder struct {
	n     int
	trans []Transition
}

func (b *nfaBuilder) state() int {
	b.n++
	return b.n - 1
}

func (b *nfaBuilder) eps(from, to int) {
	b.trans = append(b.trans, Transition{From: from, To: to, Eps: true})
}

func (b *nfaBuilder) edge(from, to int, label string, inv bool) {
	b.trans = append(b.trans, Transition{From: from, To: to, Label: label, Inv: inv})
}

func (b *nfaBuilder) build(e Regex) (start, accept int) {
	switch x := e.(type) {
	case Eps:
		s, a := b.state(), b.state()
		b.eps(s, a)
		return s, a
	case Sym:
		s, a := b.state(), b.state()
		b.edge(s, a, x.A, x.Inv)
		return s, a
	case Cat:
		ls, la := b.build(x.L)
		rs, ra := b.build(x.R)
		b.eps(la, rs)
		return ls, ra
	case Alt:
		s, a := b.state(), b.state()
		ls, la := b.build(x.L)
		rs, ra := b.build(x.R)
		b.eps(s, ls)
		b.eps(s, rs)
		b.eps(la, a)
		b.eps(ra, a)
		return s, a
	case Star:
		s, a := b.state(), b.state()
		is, ia := b.build(x.E)
		b.eps(s, a)
		b.eps(s, is)
		b.eps(ia, is)
		b.eps(ia, a)
		return s, a
	case Plus:
		is, ia := b.build(x.E)
		a := b.state()
		b.eps(ia, a)
		b.eps(ia, is)
		return is, a
	case Opt:
		s, a := b.state(), b.state()
		is, ia := b.build(x.E)
		b.eps(s, is)
		b.eps(ia, a)
		b.eps(s, a)
		return s, a
	}
	// Unreachable for well-formed expressions.
	s, a := b.state(), b.state()
	return s, a
}
