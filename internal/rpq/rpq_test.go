package rpq

import (
	"testing"

	"repro/internal/graph"
)

func chain(labels ...string) *graph.Graph {
	g := graph.New()
	for i, l := range labels {
		g.AddEdge(node(i), l, node(i+1))
	}
	return g
}

func node(i int) string { return string(rune('A' + i)) }

func has(r map[[2]string]bool, u, v string) bool { return r[[2]string{u, v}] }

func TestParseRegex(t *testing.T) {
	cases := []string{
		"a",
		"a b",
		"a|b",
		"(a b)*",
		"a+",
		"a?",
		"a^-",
		"<part of>",
		"<part of>^- b*",
		"()",
		"((a|b) c)+",
	}
	for _, in := range cases {
		e, err := ParseRegex(in)
		if err != nil {
			t.Errorf("ParseRegex(%q): %v", in, err)
			continue
		}
		// Rendering re-parses to the same rendering.
		s1 := e.String()
		e2, err := ParseRegex(s1)
		if err != nil {
			t.Errorf("reparse %q: %v", s1, err)
			continue
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("round trip: %q vs %q", s1, s2)
		}
	}
	for _, bad := range []string{"", "|a", "a||b", "(a", "a)", "*", "<unterminated"} {
		if _, err := ParseRegex(bad); err == nil {
			t.Errorf("ParseRegex(%q): want error", bad)
		}
	}
}

func TestEvalBasics(t *testing.T) {
	g := chain("a", "b", "a")
	if r := Eval(MustParseRegex("a"), g); !has(r, "A", "B") || !has(r, "C", "D") || len(r) != 2 {
		t.Errorf("a: %v", r)
	}
	if r := Eval(MustParseRegex("a b"), g); !has(r, "A", "C") || len(r) != 1 {
		t.Errorf("a b: %v", r)
	}
	if r := Eval(MustParseRegex("a b a"), g); !has(r, "A", "D") || len(r) != 1 {
		t.Errorf("a b a: %v", r)
	}
}

func TestEvalStarPlusOpt(t *testing.T) {
	g := chain("a", "a", "a")
	star := Eval(MustParseRegex("a*"), g)
	// 4 reflexive + 3+2+1 forward.
	if len(star) != 10 || !has(star, "A", "D") || !has(star, "B", "B") {
		t.Errorf("a*: %v", star)
	}
	plus := Eval(MustParseRegex("a+"), g)
	if len(plus) != 6 || has(plus, "A", "A") {
		t.Errorf("a+: %v", plus)
	}
	opt := Eval(MustParseRegex("a?"), g)
	if len(opt) != 7 || !has(opt, "A", "A") || !has(opt, "A", "B") || has(opt, "A", "C") {
		t.Errorf("a?: %v", opt)
	}
}

func TestEvalAlternationAndInverse(t *testing.T) {
	g := graph.New()
	g.AddEdge("u", "a", "v")
	g.AddEdge("w", "b", "v")
	// u -a-> v <-b- w: u (a b^-) w.
	r := Eval(MustParseRegex("a b^-"), g)
	if len(r) != 1 || !has(r, "u", "w") {
		t.Errorf("a b^-: %v", r)
	}
	r2 := Eval(MustParseRegex("a|b"), g)
	if len(r2) != 2 || !has(r2, "u", "v") || !has(r2, "w", "v") {
		t.Errorf("a|b: %v", r2)
	}
}

func TestEvalCycle(t *testing.T) {
	g := graph.New()
	g.AddEdge("x", "a", "y")
	g.AddEdge("y", "a", "x")
	r := Eval(MustParseRegex("a*"), g)
	if len(r) != 4 {
		t.Errorf("a* on 2-cycle: %v", r)
	}
	// (a a)*: even-length paths only.
	even := Eval(MustParseRegex("(a a)*"), g)
	if !has(even, "x", "x") || has(even, "x", "y") == false {
		// x to y requires odd length; (a a)* gives only even.
	}
	if has(even, "x", "y") {
		t.Errorf("(a a)* should not connect x to y: %v", even)
	}
}

func TestLabels(t *testing.T) {
	e := MustParseRegex("a (b|a)* c^-")
	got := Labels(e)
	if len(got) != 3 {
		t.Errorf("Labels = %v", got)
	}
}

func TestCRPQ(t *testing.T) {
	// Two paths that must share their endpoint.
	g := graph.New()
	g.AddEdge("s", "a", "m")
	g.AddEdge("m", "a", "t")
	g.AddEdge("s", "b", "t")
	q := &CRPQ{
		Free: []string{"x", "y"},
		Atoms: []Atom{
			{X: "x", Y: "y", E: MustParseRegex("a a")},
			{X: "x", Y: "y", E: MustParseRegex("b")},
		},
	}
	got := EvalCRPQ(q, g)
	if len(got) != 1 || got[0][0] != "s" || got[0][1] != "t" {
		t.Errorf("answers = %v", got)
	}
}

func TestCliqueCRPQ(t *testing.T) {
	complete := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					g.AddEdge(node(i), "a", node(j))
				}
			}
		}
		return g
	}
	q := Clique(3, "a")
	if got := EvalCRPQ(q, complete(3)); len(got) == 0 {
		t.Error("3-clique not found in K3")
	}
	// A directed 3-cycle has no 3-clique (needs both directions).
	cyc := graph.New()
	cyc.AddEdge("A", "a", "B")
	cyc.AddEdge("B", "a", "C")
	cyc.AddEdge("C", "a", "A")
	if got := EvalCRPQ(q, cyc); len(got) != 0 {
		t.Errorf("3-clique found in a directed cycle: %v", got)
	}
}
