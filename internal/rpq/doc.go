// Package rpq implements regular path queries (§2.1 of the TriAL paper)
// and their conjunctive extensions: an RPQ x →L y selects pairs of nodes
// connected by a path whose label lies in the regular language L. The
// package includes a small regular-expression language over edge labels
// (with inverses, i.e. 2RPQs), a Thompson NFA construction, and
// product-graph evaluation. CRPQs and C2RPQs (§6.2.1) are in crpq.go.
package rpq
