package rpq

import (
	"repro/internal/graph"
)

// Eval answers the RPQ x →L y over a graph database: it returns the set of
// node pairs (u, v) such that some path from u to v has its label in the
// language of e. Evaluation runs a BFS over the product of the graph and
// the Thompson NFA of e, the textbook PTIME algorithm the paper alludes to
// in §5.
func Eval(e Regex, g *graph.Graph) map[[2]string]bool {
	return EvalNFA(Compile(e), g)
}

// EvalNFA is Eval over a pre-compiled automaton.
func EvalNFA(n *NFA, g *graph.Graph) map[[2]string]bool {
	nodes := g.Nodes()
	idx := make(map[string]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
	}
	// Adjacency in the product graph: per (state), the transitions; per
	// (node, label, dir) the graph moves.
	fwd := map[string][][2]int{} // label -> (srcIdx, dstIdx)
	for _, e := range g.Edges() {
		fwd[e.Label] = append(fwd[e.Label], [2]int{idx[e.Src], idx[e.Dst]})
	}
	type move struct {
		to  int // NFA state
		lab string
		inv bool
		eps bool
	}
	moves := make([][]move, n.NumStates)
	for _, t := range n.Trans {
		moves[t.From] = append(moves[t.From], move{to: t.To, lab: t.Label, inv: t.Inv, eps: t.Eps})
	}
	// Graph adjacency per label, forward and backward.
	type gmove struct {
		lab string
		to  int
	}
	out := make([][]gmove, len(nodes))
	in := make([][]gmove, len(nodes))
	for lab, pairs := range fwd {
		for _, p := range pairs {
			out[p[0]] = append(out[p[0]], gmove{lab: lab, to: p[1]})
			in[p[1]] = append(in[p[1]], gmove{lab: lab, to: p[0]})
		}
	}

	result := make(map[[2]string]bool)
	nStates := n.NumStates
	visited := make([]bool, len(nodes)*nStates)
	for srcIdx, src := range nodes {
		// BFS over (node, state) from (src, Start).
		for i := range visited {
			visited[i] = false
		}
		queue := make([][2]int, 0, 16)
		push := func(v, q int) {
			k := v*nStates + q
			if !visited[k] {
				visited[k] = true
				queue = append(queue, [2]int{v, q})
			}
		}
		push(srcIdx, n.Start)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			v, q := cur[0], cur[1]
			if q == n.Accept {
				result[[2]string{src, nodes[v]}] = true
			}
			for _, m := range moves[q] {
				if m.eps {
					push(v, m.to)
					continue
				}
				if !m.inv {
					for _, gm := range out[v] {
						if gm.lab == m.lab {
							push(gm.to, m.to)
						}
					}
				} else {
					for _, gm := range in[v] {
						if gm.lab == m.lab {
							push(gm.to, m.to)
						}
					}
				}
			}
		}
	}
	return result
}
