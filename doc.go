// Package repro is a from-scratch Go reproduction of
//
//	Leonid Libkin, Juan Reutter, Domagoj Vrgoč.
//	"TriAL for RDF: Adapting Graph Query Languages for RDF Data."
//	PODS 2013. DOI 10.1145/2463664.2465226.
//
// The library implements the Triple Algebra TriAL and its recursive
// extension TriAL* over triplestores (internal/trial, internal/triplestore),
// the capturing Datalog fragments of §4 (internal/datalog), the evaluation
// algorithms of §5 with their complexity-class separations, and every
// formalism the paper compares against: RPQs/CRPQs (internal/rpq), nested
// regular expressions and CNREs (internal/nre), GXPath with data tests
// (internal/gxpath), bounded-variable FO and transitive-closure logic
// (internal/fo), register-automata expressions (internal/regmem), graph
// databases and the σ(·) RDF encoding (internal/graph, internal/rdf), and
// the language translations of §6 (internal/translate).
//
// Beyond the paper, internal/engine is an execution engine for the same
// algebra — permutation-indexed joins, parallel probing, BFS and
// semi-naive Kleene stars — fed by the cost-based logical optimizer of
// internal/optimizer (algebraic rewrites driven by the per-relation
// statistics of internal/triplestore), kept result-identical to the
// reference Evaluator by differential tests. internal/query routes all
// five frontend languages through that stack behind one plan cache, and
// cmd/trialserver serves it over HTTP.
//
// See README.md for a tour, ARCHITECTURE.md for the layer diagram and
// caching contracts, docs/LANGUAGES.md for the frontend syntaxes,
// and internal/experiments for the experiment index E1–E22 with
// paper-vs-measured outcomes. The benchmarks in
// bench_test.go regenerate the §5 complexity tables; cmd/trialbench
// regenerates all experiments.
package repro
