// Documentation checks, run by the CI docs job (and by plain `go test`):
// relative markdown links in the user-facing documents must resolve, and
// every internal package must carry package-level godoc in a doc.go.
package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the user-facing documents whose links are checked.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "docs/LANGUAGES.md", "docs/API.md"}

var (
	mdLink     = regexp.MustCompile(`\]\(([^)]+)\)`)
	fencedCode = regexp.MustCompile("(?s)```.*?```")
	inlineCode = regexp.MustCompile("`[^`\n]*`")
)

// TestMarkdownLinks: every relative link target in the documentation
// exists (anchors are checked for file existence only; external URLs are
// not fetched). Code blocks and inline code are excluded — query syntax
// like rstar[...](E) is not a link.
func TestMarkdownLinks(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		body := fencedCode.ReplaceAllString(string(raw), "")
		body = inlineCode.ReplaceAllString(body, "")
		for _, m := range mdLink.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Strip an in-page anchor; a pure anchor points into this file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			path := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", doc, m[1], path)
			}
		}
	}
}

// TestInternalPackagesHaveDocGo: each internal package has a doc.go whose
// comment documents the package (the godoc-presence gate of the CI docs
// job).
func TestInternalPackagesHaveDocGo(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		docPath := filepath.Join("internal", d.Name(), "doc.go")
		body, err := os.ReadFile(docPath)
		if err != nil {
			t.Errorf("internal/%s: missing doc.go with package documentation", d.Name())
			continue
		}
		if !strings.Contains(string(body), "// Package "+d.Name()) {
			t.Errorf("%s: does not start with a \"// Package %s\" comment", docPath, d.Name())
		}
	}
}
