package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFiles(t *testing.T, prog string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	data := filepath.Join(dir, "data.triples")
	if err := os.WriteFile(data, []byte("a\tp\tb\nb\tp\tc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pf := filepath.Join(dir, "prog.dl")
	if err := os.WriteFile(pf, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, pf
}

func TestRunProgram(t *testing.T) {
	data, pf := writeFiles(t, `Ans(?x, ?y, ?z) :- E(?x, ?y, ?z).`)
	if err := run(data, "E", pf, false); err != nil {
		t.Fatal(err)
	}
	if err := run(data, "E", pf, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecursive(t *testing.T) {
	data, pf := writeFiles(t, `
		S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w).
		R(?x, ?y, ?z) :- E(?x, ?y, ?z).
		@answer S.
	`)
	if err := run(data, "E", pf, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	data, pf := writeFiles(t, `Ans(?x, ?y, ?z) :- E(?x, ?y, ?z).`)
	if err := run("", "E", pf, false); err == nil {
		t.Error("missing data should error")
	}
	if err := run(data, "E", "", false); err == nil {
		t.Error("missing program should error")
	}
	_, bad := writeFiles(t, `Ans(?x :-`)
	if err := run(data, "E", bad, false); err == nil {
		t.Error("bad program should error")
	}
	_, unsafe := writeFiles(t, `Ans(?x, ?y, ?w) :- E(?x, ?y, ?z).`)
	if err := run(data, "E", unsafe, false); err == nil {
		t.Error("unsafe program should error")
	}
}
