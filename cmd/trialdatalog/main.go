// Command trialdatalog evaluates TripleDatalog¬ / ReachTripleDatalog¬
// programs (§4 of the TriAL paper) over a triplestore loaded from a text
// file of triples.
//
// Usage:
//
//	trialdatalog -data triples.txt -program rules.dl
//	trialdatalog -data triples.txt -program rules.dl -to-algebra
//
// With -to-algebra, the program is translated to a TriAL* expression
// (Proposition 2 / Theorem 2) and printed before evaluation; both
// evaluation routes are run and cross-checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datalog"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "path to the triples file (required)")
		rel       = flag.String("rel", "E", "relation name for the loaded triples")
		progPath  = flag.String("program", "", "path to the Datalog program (required)")
		toAlgebra = flag.Bool("to-algebra", false, "translate to TriAL*, print the expression, and cross-check")
	)
	flag.Parse()
	if err := run(*dataPath, *rel, *progPath, *toAlgebra); err != nil {
		fmt.Fprintln(os.Stderr, "trialdatalog:", err)
		os.Exit(1)
	}
}

func run(dataPath, rel, progPath string, toAlgebra bool) error {
	if dataPath == "" || progPath == "" {
		return fmt.Errorf("-data and -program are required")
	}
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	prog, err := datalog.ParseProgram(string(src))
	if err != nil {
		return err
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := triplestore.ReadStoreDefault(f, rel)
	if err != nil {
		return err
	}
	res, err := prog.Evaluate(store)
	if err != nil {
		return err
	}
	ans, err := res.Answers()
	if err != nil {
		return err
	}
	for _, t := range ans.Triples() {
		fmt.Println(store.FormatTriple(t))
	}
	fmt.Fprintf(os.Stderr, "%d triples\n", ans.Len())

	if toAlgebra {
		e, err := datalog.ToTriAL(prog)
		if err != nil {
			return fmt.Errorf("translation: %w", err)
		}
		fmt.Fprintf(os.Stderr, "algebra: %s\n", e)
		ev := trial.NewEvaluator(store)
		r, err := ev.Eval(e)
		if err != nil {
			return err
		}
		if !r.Equal(ans) {
			return fmt.Errorf("internal error: algebra translation disagrees (%d vs %d triples)", r.Len(), ans.Len())
		}
		fmt.Fprintln(os.Stderr, "algebra evaluation agrees")
	}
	return nil
}
