// Command trialbench regenerates the paper-reproduction experiments
// E1–E22 (see internal/experiments for the index) and prints their tables, and —
// with -json — runs the paired evaluator-vs-engine benchmarks and emits
// the machine-readable BENCH_engine.json that CI archives per commit.
//
// Usage:
//
//	trialbench                  # all fast (witness) experiments
//	trialbench -all             # everything, including the perf sweeps
//	trialbench -exp E4,E12      # a specific subset
//	trialbench -json            # write BENCH_engine.json (includes the
//	                            # sharded flat-vs-partitioned workloads
//	                            # at -shards shards)
//	trialbench -json -out - -min-speedup 1.2
//	                            # JSON to stdout; exit 1 if any gated
//	                            # reachability workload is below 1.2x
//	trialbench -json -shards 8 -min-sharded-speedup 1.2
//	                            # also fail if the partition-parallel
//	                            # engine's gain over the flat engine on
//	                            # the gated star workloads is below 1.2x.
//	                            # At GOMAXPROCS=1 the sharded rows are
//	                            # cross-checked but skip-and-annotated
//	                            # (no cores for the shards to use), so
//	                            # they never feed a gate there; rows
//	                            # that declare gate_min_procs only gate
//	                            # on legs with at least that many cores.
//	trialbench -json -scale     # include the scale-tier workloads:
//	                            # triangle-count (leapfrog triejoin vs
//	                            # the binary hash-join cascade, gated at
//	                            # >= 1.0x on every leg) and the
//	                            # million-triple social-join-1M (vs the
//	                            # reference Evaluator, gated at >= 1.5x
//	                            # on legs with >= 4 cores)
//	trialbench -json -procs 4   # pin GOMAXPROCS for this run — the CI
//	                            # bench matrix sweeps 1/4/all-cores legs
//	trialbench -json -trace     # additionally dump the execution span
//	                            # tree of every workload below 1.0x
//	                            # speedup — per-operator timings show
//	                            # where the engine's time went
//
// Each workload's JSON record carries an "operator_ms" breakdown: the
// exclusive per-operator milliseconds of one traced engine run
// (internal/obs spans), measured after the timed runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/triplestore"
)

func main() {
	var (
		exp        = flag.String("exp", "", "comma-separated experiment IDs (e.g. E4,E12)")
		all        = flag.Bool("all", false, "run every experiment, including perf sweeps")
		format     = flag.String("format", "text", "output format: text or markdown")
		jsonBench  = flag.Bool("json", false, "run the engine-vs-evaluator benchmarks and write them as JSON")
		out        = flag.String("out", "BENCH_engine.json", "with -json: output path ('-' for stdout)")
		minSpeedup = flag.Float64("min-speedup", 0, "with -json: fail unless every gated (reachability) workload reaches this engine speedup")
		shards     = flag.Int("shards", triplestore.DefaultShards, "with -json: shard count for the flat-vs-sharded workloads (<= 1 skips them)")
		minSharded = flag.Float64("min-sharded-speedup", 0, "with -json: fail unless every gated sharded star workload reaches this speedup over the flat engine (skipped rows and gate_min_procs rows exempt per leg)")
		scale      = flag.Bool("scale", false, "with -json: include the scale-tier workloads (triangle-count, social-join-1M) — minutes, not seconds")
		procs      = flag.Int("procs", 0, "if > 0, set GOMAXPROCS to this before measuring (the CI bench matrix's 1/4/all legs)")
		trace      = flag.Bool("trace", false, "with -json: dump the execution span tree of every workload below 1.0x speedup (where the time went)")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	var err error
	if *jsonBench {
		err = runJSON(*out, *minSpeedup, *shards, *minSharded, *scale, *trace)
	} else {
		err = run(*exp, *all, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trialbench:", err)
		os.Exit(1)
	}
}

// runJSON measures the benchmark workloads, writes the report, and
// enforces the regression gates via BenchReport.GateFailures.
func runJSON(out string, minSpeedup float64, shards int, minSharded float64, scale, trace bool) error {
	rep, err := experiments.RunBench(experiments.BenchOptions{Shards: shards, Scale: scale})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	for _, b := range rep.Workloads {
		gate := ""
		if b.Gated {
			gate = " [gated]"
			if b.GateMinProcs > 0 {
				gate = fmt.Sprintf(" [gated >=%d cores]", b.GateMinProcs)
			}
		}
		vs := ""
		if b.Baseline != "" {
			vs = " vs " + b.Baseline
			if b.Shards > 0 {
				vs = fmt.Sprintf("%s @%d shards", vs, b.Shards)
			}
		}
		if b.Skipped != "" {
			fmt.Fprintf(os.Stderr, "%-20s %-10s lang=%-8s %8d triples -> %8d  SKIPPED (%s)%s%s\n",
				b.Name, b.Family, b.Lang, b.Triples, b.ResultSize, b.Skipped, gate, vs)
			continue
		}
		fmt.Fprintf(os.Stderr, "%-20s %-10s lang=%-8s %8d triples -> %8d  speedup %.2fx%s%s\n",
			b.Name, b.Family, b.Lang, b.Triples, b.ResultSize, b.Speedup, gate, vs)
		// -trace: for a workload that lost to its baseline, show WHERE
		// the engine spent the time (the social-join class of question).
		if trace && b.Speedup < 1.0 {
			if sp := rep.Trace(b.Name); sp != nil {
				fmt.Fprintf(os.Stderr, "  trace (%s below 1.0x):\n", b.Name)
				for _, line := range strings.Split(strings.TrimSuffix(sp.Tree(), "\n"), "\n") {
					fmt.Fprintf(os.Stderr, "    %s\n", line)
				}
			}
		}
	}
	if fails := rep.GateFailures(minSpeedup, minSharded); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "gate failure:", f)
		}
		return fmt.Errorf("speedup regression: %d gate(s) failed at GOMAXPROCS=%d", len(fails), rep.GOMAXPROCS)
	}
	return nil
}

func run(exp string, all bool, format string) error {
	if format != "text" && format != "markdown" {
		return fmt.Errorf("unknown -format %q (want text or markdown)", format)
	}
	var runners []experiments.Runner
	switch {
	case exp != "":
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			r := experiments.ByID(id)
			if r == nil {
				return fmt.Errorf("unknown experiment %q (known: E1..E22)", id)
			}
			runners = append(runners, *r)
		}
	default:
		for _, r := range experiments.All() {
			if r.Perf && !all {
				continue
			}
			runners = append(runners, r)
		}
	}
	failed := 0
	for _, r := range runners {
		rep := r.Run()
		if format == "markdown" {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
