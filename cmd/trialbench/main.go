// Command trialbench regenerates the paper-reproduction experiments
// E1–E22 (see DESIGN.md for the index) and prints their tables.
//
// Usage:
//
//	trialbench              # all fast (witness) experiments
//	trialbench -all         # everything, including the perf sweeps
//	trialbench -exp E4,E12  # a specific subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "comma-separated experiment IDs (e.g. E4,E12)")
		all    = flag.Bool("all", false, "run every experiment, including perf sweeps")
		format = flag.String("format", "text", "output format: text or markdown")
	)
	flag.Parse()
	if err := run(*exp, *all, *format); err != nil {
		fmt.Fprintln(os.Stderr, "trialbench:", err)
		os.Exit(1)
	}
}

func run(exp string, all bool, format string) error {
	if format != "text" && format != "markdown" {
		return fmt.Errorf("unknown -format %q (want text or markdown)", format)
	}
	var runners []experiments.Runner
	switch {
	case exp != "":
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			r := experiments.ByID(id)
			if r == nil {
				return fmt.Errorf("unknown experiment %q (known: E1..E22)", id)
			}
			runners = append(runners, *r)
		}
	default:
		for _, r := range experiments.All() {
			if r.Perf && !all {
				continue
			}
			runners = append(runners, r)
		}
	}
	failed := 0
	for _, r := range runners {
		rep := r.Run()
		if format == "markdown" {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
