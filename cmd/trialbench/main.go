// Command trialbench regenerates the paper-reproduction experiments
// E1–E22 (see internal/experiments for the index) and prints their tables, and —
// with -json — runs the paired evaluator-vs-engine benchmarks and emits
// the machine-readable BENCH_engine.json that CI archives per commit.
//
// Usage:
//
//	trialbench                  # all fast (witness) experiments
//	trialbench -all             # everything, including the perf sweeps
//	trialbench -exp E4,E12      # a specific subset
//	trialbench -json            # write BENCH_engine.json
//	trialbench -json -out - -min-speedup 1.2
//	                            # JSON to stdout; exit 1 if any gated
//	                            # reachability workload is below 1.2x
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "comma-separated experiment IDs (e.g. E4,E12)")
		all        = flag.Bool("all", false, "run every experiment, including perf sweeps")
		format     = flag.String("format", "text", "output format: text or markdown")
		jsonBench  = flag.Bool("json", false, "run the engine-vs-evaluator benchmarks and write them as JSON")
		out        = flag.String("out", "BENCH_engine.json", "with -json: output path ('-' for stdout)")
		minSpeedup = flag.Float64("min-speedup", 0, "with -json: fail unless every gated (reachability) workload reaches this engine speedup")
	)
	flag.Parse()
	var err error
	if *jsonBench {
		err = runJSON(*out, *minSpeedup)
	} else {
		err = run(*exp, *all, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trialbench:", err)
		os.Exit(1)
	}
}

// runJSON measures the benchmark workloads, writes the report, and
// enforces the regression gate.
func runJSON(out string, minSpeedup float64) error {
	rep, err := experiments.RunBenchJSON()
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	for _, b := range rep.Workloads {
		gate := ""
		if b.Gated {
			gate = " [gated]"
		}
		fmt.Fprintf(os.Stderr, "%-20s %-10s lang=%-8s %8d triples -> %8d  speedup %.2fx%s\n",
			b.Name, b.Family, b.Lang, b.Triples, b.ResultSize, b.Speedup, gate)
	}
	if minSpeedup > 0 {
		if got := rep.MinGatedSpeedup(); got < minSpeedup {
			return fmt.Errorf("engine speedup regression: min gated speedup %.2fx below threshold %.2fx", got, minSpeedup)
		}
	}
	return nil
}

func run(exp string, all bool, format string) error {
	if format != "text" && format != "markdown" {
		return fmt.Errorf("unknown -format %q (want text or markdown)", format)
	}
	var runners []experiments.Runner
	switch {
	case exp != "":
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			r := experiments.ByID(id)
			if r == nil {
				return fmt.Errorf("unknown experiment %q (known: E1..E22)", id)
			}
			runners = append(runners, *r)
		}
	default:
		for _, r := range experiments.All() {
			if r.Perf && !all {
				continue
			}
			runners = append(runners, r)
		}
	}
	failed := 0
	for _, r := range runners {
		rep := r.Run()
		if format == "markdown" {
			fmt.Println(rep.Markdown())
		} else {
			fmt.Println(rep)
		}
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
