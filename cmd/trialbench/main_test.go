package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestRunSubset(t *testing.T) {
	if err := run("E1,E2,E21", false, "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("E999", false, "text"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run("E1", false, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := runJSON(path, 0, 4, 0, false, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		GoVersion string `json:"go_version"`
		Workloads []struct {
			Name       string             `json:"name"`
			Family     string             `json:"family"`
			Speedup    float64            `json:"speedup"`
			Shards     int                `json:"shards"`
			Skipped    string             `json:"skipped"`
			OperatorMs map[string]float64 `json:"operator_ms"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.GoVersion == "" || len(rep.Workloads) == 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	sharded := 0
	for _, w := range rep.Workloads {
		if w.Family == "sharded" {
			sharded++
			if w.Shards != 4 {
				t.Errorf("%s: shards = %d, want 4", w.Name, w.Shards)
			}
			if runtime.GOMAXPROCS(0) <= 1 && w.Skipped == "" {
				t.Errorf("%s: sharded row not annotated as skipped at GOMAXPROCS=1", w.Name)
			}
		}
		// Skipped rows are cross-checked, not executed with tracing, so
		// only timed rows must carry the per-operator breakdown.
		if w.Skipped == "" && len(w.OperatorMs) == 0 {
			t.Errorf("%s: no operator_ms breakdown", w.Name)
		}
	}
	if sharded == 0 {
		t.Error("report has no sharded flat-vs-partitioned workloads")
	}
}

func TestRunJSONGate(t *testing.T) {
	// An absurd threshold must trip the regression gate.
	if err := runJSON(filepath.Join(t.TempDir(), "b.json"), 1e9, 1, 0, false, false); err == nil {
		t.Error("min-speedup 1e9 should fail the gate")
	}
}

func TestRunJSONShardedGate(t *testing.T) {
	// An impossible sharded threshold must trip the gate on multi-core
	// hosts; a single-core host skip-and-annotates the sharded rows (no
	// cores for the shards to use), so no sharded gate can fire there.
	err := runJSON(filepath.Join(t.TempDir(), "c.json"), 0, 2, 1e9, false, false)
	if runtime.GOMAXPROCS(0) <= 1 {
		if err != nil {
			t.Fatalf("single-core host must skip the sharded gate, got: %v", err)
		}
	} else if err == nil {
		t.Error("min-sharded-speedup 1e9 should fail the gate on a multi-core host")
	}
}
