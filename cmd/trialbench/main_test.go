package main

import "testing"

func TestRunSubset(t *testing.T) {
	if err := run("E1,E2,E21", false, "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("E999", false, "text"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run("E1", false, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}
