package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSubset(t *testing.T) {
	if err := run("E1,E2,E21", false, "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("E999", false, "text"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run("E1", false, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := runJSON(path, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		GoVersion string `json:"go_version"`
		Workloads []struct {
			Name    string  `json:"name"`
			Speedup float64 `json:"speedup"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.GoVersion == "" || len(rep.Workloads) == 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
}

func TestRunJSONGate(t *testing.T) {
	// An absurd threshold must trip the regression gate.
	if err := runJSON(filepath.Join(t.TempDir(), "b.json"), 1e9); err == nil {
		t.Error("min-speedup 1e9 should fail the gate")
	}
}
