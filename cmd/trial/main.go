// Command trial evaluates TriAL* expressions over a triplestore loaded
// from a text file of triples.
//
// Usage:
//
//	trial -data triples.txt -query "join[1,3',3; 2=1'](E, E)"
//	trial -data triples.txt -query-file q.trial -mode naive
//
// The data file holds one triple per line (tab-separated, or space-
// separated with double quotes around names containing spaces); '#' starts
// a comment. Directive lines extend the format: '@rel NAME' switches the
// relation receiving subsequent triples (initially -rel, default E), and
// '@value OBJ<TAB>f1<TAB>f2...' assigns a data-value tuple to an object
// ('\N' is a null field), enabling the η conditions (p(i)=p(j)) of the
// query language. The query syntax is documented in internal/trial
// (Parse); see README.md for a tour.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "path to the triples file (required)")
		rel       = flag.String("rel", "E", "relation name for the loaded triples")
		query     = flag.String("query", "", "TriAL* expression to evaluate")
		queryFile = flag.String("query-file", "", "file holding the expression (alternative to -query)")
		mode      = flag.String("mode", "auto", "join strategy: auto (hash, Prop. 4) or naive (Thm. 3)")
		limit     = flag.Int("limit", 0, "print at most this many triples (0 = all)")
		quiet     = flag.Bool("count", false, "print only the result size")
		explain   = flag.Bool("explain", false, "print the evaluation plan before the results")
	)
	flag.Parse()
	if err := run(*dataPath, *rel, *query, *queryFile, *mode, *limit, *quiet, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "trial:", err)
		os.Exit(1)
	}
}

func run(dataPath, rel, query, queryFile, mode string, limit int, quiet, explain bool) error {
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	if (query == "") == (queryFile == "") {
		return fmt.Errorf("exactly one of -query and -query-file is required")
	}
	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	}
	e, err := trial.Parse(query)
	if err != nil {
		return err
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := triplestore.ReadStoreDefault(f, rel)
	if err != nil {
		return err
	}
	ev := trial.NewEvaluator(store)
	switch mode {
	case "auto":
	case "naive":
		ev.Mode = trial.ModeNaive
	default:
		return fmt.Errorf("unknown -mode %q (want auto or naive)", mode)
	}
	if explain {
		fmt.Fprint(os.Stderr, trial.Explain(e, ev.Mode, ev.DisableReachStar))
	}
	result, err := ev.Eval(e)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Println(result.Len())
		return nil
	}
	n := 0
	for _, t := range result.Triples() {
		if limit > 0 && n >= limit {
			fmt.Printf("... (%d more)\n", result.Len()-n)
			break
		}
		fmt.Println(store.FormatTriple(t))
		n++
	}
	fmt.Fprintf(os.Stderr, "%d triples\n", result.Len())
	return nil
}
