package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.triples")
	data := "a\tp\tb\nb\tp\tc\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQuery(t *testing.T) {
	path := writeData(t)
	if err := run(path, "E", "join[1,2,3'; 3=1'](E, E)", "", "auto", 0, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "E", "E", "", "naive", 1, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	path := writeData(t)
	qf := filepath.Join(t.TempDir(), "q.trial")
	if err := os.WriteFile(qf, []byte("rstar[1,2,3'; 3=1'](E)"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "E", "", qf, "auto", 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeData(t)
	cases := []struct {
		name string
		err  func() error
	}{
		{"no data", func() error { return run("", "E", "E", "", "auto", 0, false, false) }},
		{"no query", func() error { return run(path, "E", "", "", "auto", 0, false, false) }},
		{"both queries", func() error { return run(path, "E", "E", "f", "auto", 0, false, false) }},
		{"bad mode", func() error { return run(path, "E", "E", "", "turbo", 0, false, false) }},
		{"bad query", func() error { return run(path, "E", "join[", "", "auto", 0, false, false) }},
		{"missing file", func() error { return run(path+"x", "E", "E", "", "auto", 0, false, false) }},
		{"unknown relation", func() error { return run(path, "E", "F", "", "auto", 0, false, false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
