package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildStoreFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(path, []byte("a b c\nc d e\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err := buildStore(path, "E", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 {
		t.Errorf("loaded %d triples, want 2", s.Size())
	}
	if _, _, err := buildStore("", "E", "nosuch", 4); err == nil {
		t.Error("unknown fixture accepted")
	}
	if _, _, err := buildStore("", "E", "", 4); err == nil {
		t.Error("missing data and fixture accepted")
	}
	for _, f := range []string{"transport", "social", "example3", "chain", "cycle", "grid"} {
		if _, _, err := buildStore("", "E", f, 4); err != nil {
			t.Errorf("fixture %s: %v", f, err)
		}
	}
}
