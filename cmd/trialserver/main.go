// Command trialserver serves queries over HTTP in every language of the
// unified query layer (TriAL*, nSPARQL, RPQ, NRE, GXPath), compiling
// them through internal/query and evaluating them with the
// internal/engine execution engine (indexed joins, parallel probes,
// semi-naive stars). The store is loaded at startup and mutable at
// runtime: /triples ingests (and deletes) triples in batches, each batch
// advancing the store version once, while in-flight queries keep reading
// their own immutable snapshot. Compiled physical plans are cached per
// (language, source, store version) in an LRU; plans for dead versions
// are swept as ingest advances the version.
//
// With -shards=N the store is hash-partitioned by subject into N shards
// (triplestore.ShardedStore): ingest fans each batch out to the
// partitions under one atomic version, queries run on the
// partition-parallel engine (partition-probe joins on the shard key,
// broadcast-probe otherwise, per-shard semi-naive star rounds), and
// /stats reports per-shard triple counts.
//
// Usage:
//
//	trialserver -data triples.txt -addr :8080
//	trialserver -fixture transport
//	trialserver -fixture grid -n 50 -shards 8
//
// Endpoints:
//
//	GET /query?q=EXPR          evaluate, stream one triple per line
//	    &lang=L                query language: trial (default), nsparql,
//	                           rpq, nre, gxpath
//	    &format=json           stream NDJSON objects {"s":..,"p":..,"o":..}
//	    &limit=N               stop after N triples (the header still
//	                           reports the full result size)
//	    &explain=1             prepend the physical plan as comments
//	                           (text format only)
//	    &trace=1               record a per-operator execution trace;
//	                           text format appends it as comments, json
//	                           appends a final {"trace": ...} line
//	POST /query                body is the expression (same parameters)
//	POST /triples              ingest triples: a single JSON object
//	                           {"s":..,"p":..,"o":..[,"rel":..]} or an
//	                           NDJSON stream of them (one per line; an
//	                           optional "op":"delete" deletes instead);
//	                           applied as one atomic batch
//	DELETE /triples            same body formats; every line deletes
//	GET /explain?q=EXPR&lang=L the physical plan only; &trace=1 also
//	                           executes and appends the measured operator
//	                           tree
//	GET /stats                 store, runtime, ingest and plan-cache counters
//	GET /metrics               Prometheus text exposition (internal/obs)
//	GET /debug/queries         recent queries from the slow-query ring
//	                           buffer (see -slow-ms, -slowlog)
//	GET /healthz               liveness probe
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/.
//
// The full result size is reported in the X-Trial-Result-Size response
// header and, for format=text, a trailing "# N triples" comment.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes and
// in-flight requests drain for up to -drain before the process exits.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/triplestore"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		data    = flag.String("data", "", "path to a triples file (ReadStore format)")
		rel     = flag.String("rel", "E", "initial relation name for -data triples (also the edge relation for graph-language queries)")
		fixture = flag.String("fixture", "", "built-in store: transport, social, example3, chain, cycle, grid")
		n       = flag.Int("n", 32, "size parameter for generated fixtures (chain length, grid side)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for parallel operators")
		cache   = flag.Int("cache", query.DefaultCacheSize, "plan-cache capacity (compiled plans kept; 0 disables)")
		shards  = flag.Int("shards", 1, "hash-partition the store by subject into this many shards and execute partition-parallel (1 = flat store)")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowCap = flag.Int("slowlog", 128, "slow-query ring-buffer capacity (/debug/queries)")
		slowMs  = flag.Int("slow-ms", 0, "only log queries at or above this latency in milliseconds (0 = log every query)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	)
	flag.Parse()
	store, desc, err := buildStore(*data, *rel, *fixture, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trialserver:", err)
		os.Exit(1)
	}
	srv := newServer(store, *workers, *rel, *cache, *shards,
		withSlowLog(*slowCap, time.Duration(*slowMs)*time.Millisecond),
		withPprof(*pprofOn))
	if srv.sharded != nil {
		desc = fmt.Sprintf("%s, %d shards", desc, srv.sharded.NumShards())
	}
	log.Printf("trialserver: serving %s (%d objects, %d triples) on %s",
		desc, store.NumObjects(), store.Size(), *addr)

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// drain in-flight requests (bounded by -drain) before exiting, so a
	// streaming query or an ingest batch racing the signal completes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
		log.Printf("trialserver: shutting down (draining up to %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("trialserver: shutdown: %v", err)
		}
	}
}

func buildStore(data, rel, fixture string, n int) (*triplestore.Store, string, error) {
	if (data == "") == (fixture == "") {
		return nil, "", fmt.Errorf("exactly one of -data and -fixture is required")
	}
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		s, err := triplestore.ReadStoreDefault(f, rel)
		if err != nil {
			return nil, "", err
		}
		return s, data, nil
	}
	if n < 2 {
		n = 2
	}
	switch fixture {
	case "transport":
		return fixtures.Transport(), "fixture transport", nil
	case "social":
		return fixtures.SocialNetwork(), "fixture social", nil
	case "example3":
		return fixtures.Example3(), "fixture example3", nil
	case "chain":
		return genstore.Chain(n, 2), fmt.Sprintf("chain(%d)", n), nil
	case "cycle":
		return genstore.Cycle(n), fmt.Sprintf("cycle(%d)", n), nil
	case "grid":
		return genstore.Grid(n, n), fmt.Sprintf("grid(%dx%d)", n, n), nil
	}
	return nil, "", fmt.Errorf("unknown -fixture %q", fixture)
}

// maxIngestBody bounds a /triples request body (NDJSON batch): 32 MiB,
// enough for ~hundred-thousand-triple batches while keeping a single
// request from exhausting memory.
const maxIngestBody = 32 << 20

// server holds the live store and the query layer shared by all
// requests. Queries snapshot the store per version; ingest mutates it
// through batched store methods, so the two sides never block each other
// beyond the store's internal writer lock.
type server struct {
	store *triplestore.Store
	// sharded is non-nil when the store is hash-partitioned (-shards > 1):
	// ingest must then go through it so the partitions stay in lockstep
	// with the union, and queries run partition-parallel.
	sharded *triplestore.ShardedStore
	q       *query.Querier
	workers int
	mux     *http.ServeMux
	start   time.Time
	m       *serverMetrics
	slow    *obs.SlowLog
}

// serverOption configures optional server behavior; the positional
// newServer parameters stay as the tests use them.
type serverOption func(*serverConfig)

type serverConfig struct {
	slowCap   int
	threshold time.Duration
	pprofOn   bool
}

// withSlowLog sizes the slow-query ring buffer and sets the latency
// threshold below which queries are not logged (0 logs every query).
func withSlowLog(capacity int, threshold time.Duration) serverOption {
	return func(c *serverConfig) { c.slowCap, c.threshold = capacity, threshold }
}

// withPprof mounts net/http/pprof under /debug/pprof/.
func withPprof(on bool) serverOption {
	return func(c *serverConfig) { c.pprofOn = on }
}

func newServer(store *triplestore.Store, workers int, rel string, cacheSize, shards int, opts ...serverOption) *server {
	if workers < 1 {
		workers = 1
	}
	cfg := serverConfig{slowCap: 128}
	for _, o := range opts {
		o(&cfg)
	}
	qopts := []query.Option{
		query.WithRelation(rel),
		query.WithCacheSize(cacheSize),
		query.WithEngineOptions(engine.WithWorkers(workers)),
	}
	s := &server{
		store:   store,
		workers: workers,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		slow:    obs.NewSlowLog(cfg.slowCap, cfg.threshold),
	}
	if shards > 1 {
		s.sharded = triplestore.Shard(store, shards)
		s.q = query.NewSharded(s.sharded, qopts...)
	} else {
		s.q = query.New(store, qopts...)
	}
	s.m = newServerMetrics(s.q, store, s.sharded, s.slow, s.start)

	handle := func(route string, h http.HandlerFunc, allowed ...string) {
		s.mux.HandleFunc(route, s.m.instrument(route, methods(h, allowed...)))
	}
	s.mux.HandleFunc("/", s.m.instrument("/", s.handleIndex))
	handle("/query", s.handleQuery, http.MethodGet, http.MethodPost)
	handle("/triples", s.handleTriples, http.MethodPost, http.MethodDelete)
	handle("/explain", s.handleExplain, http.MethodGet)
	handle("/stats", s.handleStats, http.MethodGet)
	handle("/metrics", s.handleMetrics, http.MethodGet)
	handle("/debug/queries", s.handleDebugQueries, http.MethodGet)
	handle("/healthz", s.handleHealthz, http.MethodGet)
	if cfg.pprofOn {
		// Registered on this mux explicitly; the pprof import's
		// DefaultServeMux side effect is never served.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// methods wraps a handler with an allowed-method check, answering 405
// (with an Allow header) otherwise. HEAD rides along wherever GET is
// allowed (net/http discards the body), so health probes keep working.
func methods(h http.HandlerFunc, allowed ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allowed {
			if r.Method == m || (r.Method == http.MethodHead && m == http.MethodGet) {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `trialserver — unified query engine over HTTP

GET    /query?q=EXPR[&lang=trial|nsparql|rpq|nre|gxpath][&limit=N][&format=text|json][&explain=1]
POST   /query            (expression in the body)
POST   /triples          ingest: {"s":..,"p":..,"o":..[,"rel":..][,"op":"delete"]} or NDJSON stream (one batch)
DELETE /triples          same formats, every line deletes
GET    /explain?q=EXPR[&lang=L]
GET    /stats
GET    /healthz

Every language compiles to TriAL* and runs on the parallel engine.
Queries read immutable snapshots; ingest batches advance the store version once each.
Examples: /query?q=join[1,3',3; 2=1'](E, E)
          /query?lang=rpq&q=a*
          /query?lang=gxpath&q=[<a>].b
Store: %d objects, %d triples, relations %v
`, s.store.NumObjects(), s.store.Size(), s.store.RelationNames())
}

// readQuery extracts the expression text from ?q= or the request body.
func readQuery(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return "", err
		}
		if len(b) > 0 {
			return string(b), nil
		}
	}
	return "", fmt.Errorf("missing query: pass ?q= or a POST body")
}

// readLang extracts and validates the ?lang= parameter (default TriAL*).
func readLang(r *http.Request) (query.Lang, error) {
	return query.ParseLang(r.URL.Query().Get("lang"))
}

// queryError writes a compile error as 400 and a planning or execution
// error as 422, preserving the status split clients of the TriAL*-only
// server relied on.
func (s *server) queryError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	var ce *query.CompileError
	if errors.As(err, &ce) {
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := readQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lang, err := readLang(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		limit, err = strconv.Atoi(l)
		if err != nil || limit < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "json" {
		http.Error(w, "bad format (want text or json)", http.StatusBadRequest)
		return
	}

	var plan string
	if format == "text" && r.URL.Query().Get("explain") == "1" {
		plan, err = s.q.Explain(lang, q)
		if err != nil {
			s.queryError(w, err)
			return
		}
	}

	traced := r.URL.Query().Get("trace") == "1"
	start := time.Now()
	var result *triplestore.Relation
	var sp *obs.Span
	if traced {
		result, sp, err = s.q.QueryTrace(lang, q)
	} else {
		result, err = s.q.Query(lang, q)
	}
	dur := time.Since(start)
	s.m.observeQuery(lang, dur, err)
	rec := obs.QueryRecord{
		Time:     start,
		Lang:     string(lang),
		Source:   q,
		Duration: dur,
		Trace:    sp,
	}
	if err != nil {
		rec.Err = err.Error()
		s.slow.Record(rec)
		s.queryError(w, err)
		return
	}
	rec.ResultSize = result.Len()
	s.slow.Record(rec)

	w.Header().Set("X-Trial-Result-Size", strconv.Itoa(result.Len()))
	if format == "json" {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	for _, line := range strings.Split(strings.TrimSuffix(plan, "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(bw, "# %s\n", line)
		}
	}

	flusher, _ := w.(http.Flusher)
	written := 0
	enc := json.NewEncoder(bw)
	for _, t := range result.Triples() {
		if limit > 0 && written >= limit {
			break
		}
		if format == "json" {
			enc.Encode(map[string]string{
				"s": s.store.Name(t[0]),
				"p": s.store.Name(t[1]),
				"o": s.store.Name(t[2]),
			})
		} else {
			fmt.Fprintf(bw, "%s\t%s\t%s\n", s.store.Name(t[0]), s.store.Name(t[1]), s.store.Name(t[2]))
		}
		written++
		if flusher != nil && written%4096 == 0 {
			bw.Flush()
			flusher.Flush()
		}
	}
	if format == "text" {
		fmt.Fprintf(bw, "# %d triples\n", result.Len())
	}
	if sp != nil {
		if format == "json" {
			enc.Encode(map[string]any{"trace": sp})
		} else {
			fmt.Fprintf(bw, "# trace:\n")
			for _, line := range strings.Split(strings.TrimSuffix(sp.Tree(), "\n"), "\n") {
				fmt.Fprintf(bw, "#   %s\n", line)
			}
		}
	}
}

// capTrackReader remembers whether the underlying http.MaxBytesReader
// tripped its limit: the NDJSON scanner reports the truncated final line
// as a parse error first, so the handler needs the flag (not the
// returned error) to answer 413 rather than 400.
type capTrackReader struct {
	r   io.Reader
	hit bool
}

func (c *capTrackReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		c.hit = true
	}
	return n, err
}

// handleTriples ingests mutations: POST applies the body's ops (adds by
// default, per-line "op":"delete" honored), DELETE forces every line to
// be a deletion. The body is a single JSON object or an NDJSON stream,
// applied as ONE batch: the store version advances at most once, queries
// racing the ingest see either the whole batch or none of it.
func (s *server) handleTriples(w http.ResponseWriter, r *http.Request) {
	body := &capTrackReader{r: http.MaxBytesReader(w, r.Body, maxIngestBody)}
	ops, err := triplestore.ReadOps(body, s.q.Relation())
	if err != nil {
		status := http.StatusBadRequest
		if body.hit {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	if len(ops) == 0 {
		http.Error(w, "empty batch: body must hold at least one JSON triple", http.StatusBadRequest)
		return
	}
	if r.Method == http.MethodDelete {
		for i := range ops {
			ops[i].Delete = true
		}
	}
	var res triplestore.BatchResult
	if s.sharded != nil {
		res, err = s.sharded.ApplyBatch(ops)
	} else {
		res, err = s.store.ApplyBatch(ops)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.m.observeBatch(res)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"added":   res.Added,
		"removed": res.Removed,
		"version": res.Version,
		"objects": s.store.NumObjects(),
		"triples": s.store.Size(),
	})
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, err := readQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lang, err := readLang(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := s.q.Explain(lang, q)
	if err != nil {
		s.queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, plan)
	if r.URL.Query().Get("trace") != "1" {
		return
	}
	// &trace=1: run the query once and append the measured operator tree
	// (actual cardinalities and timings) under the predicted plan.
	start := time.Now()
	_, sp, err := s.q.QueryTrace(lang, q)
	s.m.observeQuery(lang, time.Since(start), err)
	if err != nil {
		fmt.Fprintf(w, "\nexecution failed: %s\n", err)
		return
	}
	fmt.Fprintf(w, "\nexecution trace:\n%s", sp.Tree())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Sharding observability: shard count and per-shard triple counts
	// (the skew bounds the partition-parallel speedup). count = 1 with no
	// per-shard list means the store is flat.
	shardInfo := map[string]any{"count": 1}
	if s.sharded != nil {
		shardInfo["count"] = s.sharded.NumShards()
		shardInfo["per_shard"] = s.sharded.ShardStats()
	}
	json.NewEncoder(w).Encode(map[string]any{
		"shards":    shardInfo,
		"objects":   s.store.NumObjects(),
		"triples":   s.store.Size(),
		"relations": s.store.RelationNames(),
		// Served-query count from the obs registry: the sum of
		// trial_queries_total over every language, counting only
		// successes (the pre-obs server never counted failed queries).
		"queries":    s.m.queriesTotal.Sum("status", "ok"),
		"uptime_s":   int(time.Since(s.start).Seconds()),
		"workers":    s.workers,
		"languages":  query.Langs(),
		"plan_cache": s.q.Stats(),
		// Logical-optimizer counters: per-rule rewrite hits across all
		// plan-cache misses (see internal/optimizer).
		"optimizer": s.q.RewriteStats(),
		// Statistics snapshot bookkeeping: how often the store-level
		// per-relation statistics were rebuilt, and the store version the
		// current snapshot reflects.
		"store_stats": map[string]any{
			"refreshes": s.store.StatsRefreshes(),
			"version":   s.store.Version(),
		},
		// Ingest counters: what arrived through /triples (batches and
		// the triples they actually changed), read from the same obs
		// instruments /metrics exports so the two endpoints agree ...
		"ingest": map[string]any{
			"batches": s.m.ingestBatches.Value(),
			"added":   s.m.ingestTriples.With("added").Value(),
			"removed": s.m.ingestTriples.With("removed").Value(),
		},
		// ... and the store's own lifetime mutation counters, which also
		// cover writes not made through HTTP (initial load, snapshots).
		"store_mutations": s.store.MutationStats(),
	})
}

// handleMetrics serves the server's obs registry in Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.m.reg.WritePrometheus(w); err != nil {
		log.Printf("trialserver: /metrics: %v", err)
	}
}

// handleDebugQueries serves the slow-query ring buffer, newest first.
// Records carry the execution trace when the query ran with &trace=1.
func (s *server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"threshold_ms": float64(s.slow.Threshold().Microseconds()) / 1000,
		"total":        s.slow.Total(),
		"queries":      s.slow.Snapshot(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}
