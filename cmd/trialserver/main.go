// Command trialserver serves queries over HTTP in every language of the
// unified query layer (TriAL*, nSPARQL, RPQ, NRE, GXPath), compiling
// them through internal/query and evaluating them with the
// internal/engine execution engine (indexed joins, parallel probes,
// semi-naive stars). The serving tier itself — the versioned /v1 API,
// bearer-token auth, per-client rate limiting, per-request deadlines,
// result pagination and the JSON error envelope — lives in
// internal/serve; this command only parses flags, builds the store and
// mounts a serve.Server behind http.Server.
//
// The store is loaded at startup and mutable at runtime: /v1/triples
// ingests (and deletes) triples in batches, each batch advancing the
// store version once, while in-flight queries keep reading their own
// immutable snapshot. With -shards=N the store is hash-partitioned by
// subject into N shards and queries run on the partition-parallel
// engine.
//
// With -data-dir the store is durable: mutations are written to a
// write-ahead log before they are acknowledged, the memtable is flushed
// to immutable sorted segment files, and a restart recovers exactly the
// acknowledged state (docs/STORAGE.md has the formats and the recovery
// protocol). A fresh directory can be seeded once from -data or
// -fixture; afterwards the directory alone carries the state.
//
// Usage:
//
//	trialserver -data triples.txt -addr :8080
//	trialserver -fixture transport -tokens "s3cret:admin,scraper:read"
//	trialserver -fixture grid -n 50 -shards 8 -rate-qps 100 -query-timeout 30s
//	trialserver -data-dir /var/lib/trial -fixture social   # seed once
//	trialserver -data-dir /var/lib/trial                   # reopen
//
// See docs/API.md for the full endpoint contract (and the legacy
// pre-v1 aliases). SIGINT/SIGTERM trigger a graceful shutdown: the
// listener closes, in-flight requests drain for up to -drain, and with
// -data-dir the storage engine flushes its memtable tail and closes
// before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/triplestore"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		data    = flag.String("data", "", "path to a triples file (ReadStore format)")
		rel     = flag.String("rel", "E", "initial relation name for -data triples (also the edge relation for graph-language queries)")
		fixture = flag.String("fixture", "", "built-in store: transport, social, example3, chain, cycle, grid")
		n       = flag.Int("n", 32, "size parameter for generated fixtures (chain length, grid side)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for parallel operators")
		cache   = flag.Int("cache", query.DefaultCacheSize, "plan-cache capacity (compiled plans kept; 0 disables)")
		shards  = flag.Int("shards", 1, "hash-partition the store by subject into this many shards and execute partition-parallel (1 = flat store)")

		dataDir    = flag.String("data-dir", "", "durable storage directory (WAL + segments); a fresh dir may be seeded from -data or -fixture, an existing one must be opened alone")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync per batch) or none (page cache only)")
		readBudget = flag.Int64("read-budget", -1, "bytes of relation data the open may materialize on the heap; the rest is served from mapped segment files (-1 unlimited, 0 fully cold; requires -data-dir)")

		tokens     = flag.String("tokens", "", "bearer tokens as comma-separated token:role pairs (roles: read, admin); empty disables auth")
		rateQPS    = flag.Float64("rate-qps", 0, "per-client rate limit in requests/second (0 disables)")
		rateBurst  = flag.Int("rate-burst", 20, "per-client token-bucket burst capacity")
		qTimeout   = flag.Duration("query-timeout", 0, "server-wide query execution deadline (0 = none; requests can tighten it with timeout_ms)")
		maxResults = flag.Int("max-results", serve.DefaultMaxResults, "hard cap on triples per /v1/query page (clients page past it with cursors)")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (rate limited; admin-only when -tokens is set)")
		slowCap = flag.Int("slowlog", 128, "slow-query ring-buffer capacity (/v1/debug/queries)")
		slowMs  = flag.Int("slow-ms", 0, "only log queries at or above this latency in milliseconds (0 = log every query)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	)
	flag.Parse()
	var (
		store *triplestore.Store
		eng   storage.Engine
		desc  string
		err   error
	)
	if *dataDir != "" {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "trialserver: -data-dir is incompatible with -shards > 1 (the partition copies would bypass the WAL)")
			os.Exit(1)
		}
		eng, desc, err = openDataDir(*dataDir, *walSync, *data, *rel, *fixture, *n, *readBudget)
		if err == nil {
			store = eng.Store()
		}
	} else {
		if *readBudget >= 0 {
			fmt.Fprintln(os.Stderr, "trialserver: -read-budget requires -data-dir (an in-memory store has no segments to read from)")
			os.Exit(1)
		}
		store, desc, err = buildStore(*data, *rel, *fixture, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trialserver:", err)
		os.Exit(1)
	}
	auth, err := serve.ParseTokens(*tokens)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trialserver: -tokens:", err)
		os.Exit(1)
	}
	srvOpts := []serve.Option{
		serve.WithWorkers(*workers),
		serve.WithRelation(*rel),
		serve.WithCacheSize(*cache),
		serve.WithShards(*shards),
		serve.WithSlowLog(*slowCap, time.Duration(*slowMs)*time.Millisecond),
		serve.WithPprof(*pprofOn),
		serve.WithAuthTokens(auth),
		serve.WithRateLimit(*rateQPS, *rateBurst),
		serve.WithQueryTimeout(*qTimeout),
		serve.WithMaxResults(*maxResults),
	}
	if eng != nil {
		srvOpts = append(srvOpts, serve.WithStorageEngine(eng))
	}
	srv := serve.New(store, srvOpts...)
	if ss := srv.Sharded(); ss != nil {
		desc = fmt.Sprintf("%s, %d shards", desc, ss.NumShards())
	}
	log.Printf("trialserver: serving %s (%d objects, %d triples) on %s",
		desc, store.NumObjects(), store.Size(), *addr)

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// drain in-flight requests (bounded by -drain) before exiting, so a
	// streaming query or an ingest batch racing the signal completes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
		log.Printf("trialserver: shutting down (draining up to %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("trialserver: shutdown: %v", err)
		}
		// After the listener has drained, flush the memtable tail and
		// close the storage engine so the final batches are in a segment
		// (and the data directory reopens without WAL replay).
		if err := srv.Close(); err != nil {
			log.Printf("trialserver: close: %v", err)
		}
	}
}

// openDataDir opens (or seeds) a durable data directory. An existing
// store must be opened alone: silently ignoring -data/-fixture would
// look like the flags worked, and silently re-seeding would shadow the
// durable state.
func openDataDir(dir, walSync, data, rel, fixture string, n int, readBudget int64) (storage.Engine, string, error) {
	policy, err := storage.ParseSyncPolicy(walSync)
	if err != nil {
		return nil, "", fmt.Errorf("-wal-sync: %w", err)
	}
	opts := []storage.Option{storage.WithSyncPolicy(policy), storage.WithReadBudget(readBudget)}
	if storage.Exists(dir) {
		if data != "" || fixture != "" {
			return nil, "", fmt.Errorf("%s already holds a store; drop -data/-fixture to open it (or point -data-dir at a fresh directory to seed)", dir)
		}
		eng, err := storage.Open(dir, opts...)
		if err != nil {
			return nil, "", err
		}
		st := eng.Stats()
		return eng, fmt.Sprintf("data-dir %s (recovered in %.1fms, %d segments, %d WAL records replayed)",
			dir, st.RecoveryMillis, st.Segments, st.WALReplayed), nil
	}
	if data == "" && fixture == "" {
		eng, err := storage.Open(dir, opts...)
		if err != nil {
			return nil, "", err
		}
		return eng, fmt.Sprintf("data-dir %s (fresh, empty)", dir), nil
	}
	seed, desc, err := buildStore(data, rel, fixture, n)
	if err != nil {
		return nil, "", err
	}
	eng, err := storage.CreateFrom(dir, seed, opts...)
	if err != nil {
		return nil, "", err
	}
	return eng, fmt.Sprintf("data-dir %s (seeded from %s)", dir, desc), nil
}

func buildStore(data, rel, fixture string, n int) (*triplestore.Store, string, error) {
	if (data == "") == (fixture == "") {
		return nil, "", fmt.Errorf("exactly one of -data and -fixture is required")
	}
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		s, err := triplestore.ReadStoreDefault(f, rel)
		if err != nil {
			return nil, "", err
		}
		return s, data, nil
	}
	if n < 2 {
		n = 2
	}
	switch fixture {
	case "transport":
		return fixtures.Transport(), "fixture transport", nil
	case "social":
		return fixtures.SocialNetwork(), "fixture social", nil
	case "example3":
		return fixtures.Example3(), "fixture example3", nil
	case "chain":
		return genstore.Chain(n, 2), fmt.Sprintf("chain(%d)", n), nil
	case "cycle":
		return genstore.Cycle(n), fmt.Sprintf("cycle(%d)", n), nil
	case "grid":
		return genstore.Grid(n, n), fmt.Sprintf("grid(%dx%d)", n, n), nil
	}
	return nil, "", fmt.Errorf("unknown -fixture %q", fixture)
}
