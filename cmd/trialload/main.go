// Command trialload is the serving-tier load harness: it builds a
// store, mounts an internal/serve Server in-process, drives N
// concurrent clients through a mixed query/ingest workload over real
// HTTP, runs a cancellation probe (a query with a deadline far below
// its runtime), and writes BENCH_server.json with per-class latency
// percentiles, aggregate QPS and the probe's outcome.
//
// Usage:
//
//	trialload                              # defaults: grid(48), 8 clients
//	trialload -fixture grid -n 64 -shards 4 -clients 16 -requests 100
//	trialload -out - | jq .qps             # JSON to stdout
//	trialload -max-p99-ms 500              # exit 1 if query p99 exceeds 500ms
//	trialload -baseline BENCH_server.json -max-p99-regress 3
//	                                       # exit 1 if query p99 regressed
//	                                       # more than 3x vs the baseline
//	trialload -require-cancel=false        # skip the cancellation gate
//
// The cancellation gate fails the run unless the probe answered 504,
// bumped trial_query_cancelled_total, and the goroutine count drained
// back to its pre-probe baseline — the evidence that a timed-out query
// frees the engine's worker pool. CI runs trialload as the
// server-load-smoke step and archives BENCH_server.json per commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/serve"
	"repro/internal/triplestore"
)

func main() {
	var (
		fixture = flag.String("fixture", "grid", "store: transport, social, chain, cycle, grid")
		n       = flag.Int("n", 48, "size parameter for generated stores (chain length, grid side)")
		rel     = flag.String("rel", "E", "edge relation name")
		shards  = flag.Int("shards", 1, "hash-partition the store into this many shards (1 = flat)")
		workers = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")

		clients  = flag.Int("clients", 8, "concurrent clients")
		requests = flag.Int("requests", 50, "requests per client")
		ingestEv = flag.Int("ingest-every", 5, "every k-th request per client is an ingest batch (0 disables)")
		batch    = flag.Int("batch", 8, "triples per ingest batch")
		limit    = flag.Int("limit", 100, "page limit per query request")
		queries  = flag.String("queries", "", "semicolon-separated query workload (default: scan and joins)")

		cancelQ   = flag.String("cancel-query", "rstar[1,2,3'; 3=1'](E)", "cancellation-probe query ('' skips the probe)")
		cancelMs  = flag.Int("cancel-timeout-ms", 100, "cancellation-probe deadline in milliseconds")
		reqCancel = flag.Bool("require-cancel", true, "fail unless the probe observed a 504, a cancelled-counter bump and drained workers")

		out        = flag.String("out", "BENCH_server.json", "output path ('-' for stdout)")
		maxP99     = flag.Float64("max-p99-ms", 0, "fail if query p99 latency exceeds this many milliseconds (0 disables)")
		baseline   = flag.String("baseline", "", "baseline BENCH_server.json to gate regressions against")
		maxRegress = flag.Float64("max-p99-regress", 0, "with -baseline: fail if query p99 exceeds baseline p99 times this factor (0 disables)")
	)
	flag.Parse()
	if err := run(*fixture, *n, *rel, *shards, *workers, *clients, *requests, *ingestEv,
		*batch, *limit, *queries, *cancelQ, *cancelMs, *reqCancel,
		*out, *maxP99, *baseline, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "trialload:", err)
		os.Exit(1)
	}
}

func buildStore(fixture string, n int) (*triplestore.Store, error) {
	if n < 2 {
		n = 2
	}
	switch fixture {
	case "transport":
		return fixtures.Transport(), nil
	case "social":
		return fixtures.SocialNetwork(), nil
	case "chain":
		return genstore.Chain(n, 2), nil
	case "cycle":
		return genstore.Cycle(n), nil
	case "grid":
		return genstore.Grid(n, n), nil
	}
	return nil, fmt.Errorf("unknown -fixture %q", fixture)
}

func run(fixture string, n int, rel string, shards, workers, clients, requests, ingestEv,
	batch, limit int, queries, cancelQ string, cancelMs int, reqCancel bool,
	out string, maxP99 float64, baseline string, maxRegress float64) error {
	store, err := buildStore(fixture, n)
	if err != nil {
		return err
	}
	opts := []serve.Option{serve.WithRelation(rel), serve.WithShards(shards)}
	if workers > 0 {
		opts = append(opts, serve.WithWorkers(workers))
	}
	srv := serve.New(store, opts...)

	cfg := experiments.LoadConfig{
		Clients:           clients,
		RequestsPerClient: requests,
		QueryLimit:        limit,
		IngestEvery:       ingestEv,
		BatchSize:         batch,
		CancelQuery:       cancelQ,
		CancelTimeoutMs:   cancelMs,
	}
	if queries != "" {
		cfg.Queries = strings.Split(queries, ";")
	}
	fmt.Fprintf(os.Stderr, "trialload: %s(%d), %d shards, %d clients x %d requests\n",
		fixture, n, shards, clients, requests)
	rep, err := experiments.RunServerLoad(srv, cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trialload: %d requests (%d errors) in %.0fms = %.0f qps\n",
		rep.Requests, rep.Errors, rep.DurationMs, rep.QPS)
	fmt.Fprintf(os.Stderr, "trialload: query  p50 %.2fms p95 %.2fms p99 %.2fms (n=%d)\n",
		rep.Query.P50Ms, rep.Query.P95Ms, rep.Query.P99Ms, rep.Query.Count)
	fmt.Fprintf(os.Stderr, "trialload: ingest p50 %.2fms p95 %.2fms p99 %.2fms (n=%d)\n",
		rep.Ingest.P50Ms, rep.Ingest.P95Ms, rep.Ingest.P99Ms, rep.Ingest.Count)
	if rep.Cancel.Ran {
		fmt.Fprintf(os.Stderr, "trialload: cancel probe: status %d, cancelled +%.0f, goroutines %d -> %d (drained in %.0fms)\n",
			rep.Cancel.Status, rep.Cancel.CancelledDelta,
			rep.Cancel.GoroutineBase, rep.Cancel.GoroutineAfter, rep.Cancel.DrainedWithinMs)
	}

	return gate(rep, reqCancel, maxP99, baseline, maxRegress)
}

// gate enforces the CI regression gates on a finished report.
func gate(rep *experiments.LoadReport, reqCancel bool, maxP99 float64, baseline string, maxRegress float64) error {
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	if reqCancel && rep.Cancel.Ran {
		c := rep.Cancel
		if c.Status != 504 {
			return fmt.Errorf("cancel probe answered %d, want 504 (deadline did not trip)", c.Status)
		}
		if c.CancelledDelta < 1 {
			return fmt.Errorf("trial_query_cancelled_total did not increase: the engine ran to completion past the deadline")
		}
		if c.GoroutineAfter > c.GoroutineBase+2 {
			return fmt.Errorf("goroutines %d -> %d: cancelled query left engine workers running",
				c.GoroutineBase, c.GoroutineAfter)
		}
	}
	if maxP99 > 0 && rep.Query.P99Ms > maxP99 {
		return fmt.Errorf("query p99 %.2fms exceeds gate %.2fms", rep.Query.P99Ms, maxP99)
	}
	if baseline != "" && maxRegress > 0 {
		b, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base experiments.LoadReport
		if err := json.Unmarshal(b, &base); err != nil {
			return fmt.Errorf("baseline %s: %v", baseline, err)
		}
		if base.Query.P99Ms > 0 && rep.Query.P99Ms > base.Query.P99Ms*maxRegress {
			return fmt.Errorf("query p99 %.2fms regressed past %.1fx baseline %.2fms",
				rep.Query.P99Ms, maxRegress, base.Query.P99Ms)
		}
	}
	return nil
}
