// Benchmarks regenerating the complexity results of §5 of the TriAL paper
// (the theory paper's analogue of evaluation tables; experiments E9–E13
// of the internal/experiments index measure the same bounds):
//
//   - BenchmarkJoinNaive:      Theorem 3, O(|T|²) joins (Procedure 1)
//   - BenchmarkJoinHash:       Proposition 4, ~O(|O|·|T|) TriAL= joins
//   - BenchmarkStarNaive:      Theorem 3, O(|T|³) star fixpoint (Procedure 2)
//   - BenchmarkReachStar:      Proposition 5, Procedures 3–4
//   - BenchmarkQueryQ:         the paper's running query end to end
//   - BenchmarkDatalog*:       Corollary 1, translation + evaluation
//   - BenchmarkMembership:     Proposition 3, QueryEvaluation
//   - BenchmarkTranslations:   §6.2 language translations, end to end
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/genstore"
	"repro/internal/graph"
	"repro/internal/gxpath"
	"repro/internal/translate"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

var benchSink int

func composeJoin() trial.Expr {
	return trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
}

// BenchmarkJoinNaive: Theorem 3's nested-loop join; time should grow ~4×
// per |T| doubling.
func BenchmarkJoinNaive(b *testing.B) {
	for _, size := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("T=%d", size), func(b *testing.B) {
			s := genstore.Random(rand.New(rand.NewSource(1)), size, size, 0)
			ev := trial.NewEvaluator(s)
			ev.Mode = trial.ModeNaive
			e := composeJoin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(e)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkJoinHash: Proposition 4's hash join; ~2× per |T| doubling on
// selective joins (|O| grown with |T|).
func BenchmarkJoinHash(b *testing.B) {
	for _, size := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("T=%d", size), func(b *testing.B) {
			s := genstore.Random(rand.New(rand.NewSource(1)), size, size, 0)
			ev := trial.NewEvaluator(s)
			e := composeJoin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(e)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkStarNaive: the generic star fixpoint with naive joins on
// chains; ~8× per doubling (Theorem 3's cubic bound is tight here).
func BenchmarkStarNaive(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			s := genstore.Chain(n, 1)
			ev := trial.NewEvaluator(s)
			ev.Mode = trial.ModeNaive
			ev.DisableReachStar = true
			e := trial.ReachRight(genstore.RelE)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(e)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkReachStar: Proposition 5's Procedure 3 on chains; ~4× per
// doubling (the Θ(n²) output dominates).
func BenchmarkReachStar(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			s := genstore.Chain(n, 1)
			ev := trial.NewEvaluator(s)
			e := trial.ReachRight(genstore.RelE)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(e)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkSameLabelReachStar: Procedure 4 (per-label reachability) on
// grids, which mix labels.
func BenchmarkSameLabelReachStar(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("grid=%dx%d", n, n), func(b *testing.B) {
			s := genstore.Grid(n, n)
			ev := trial.NewEvaluator(s)
			e := trial.SameLabelReach(genstore.RelE)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(e)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkQueryQ: the running query Q on synthetic transport networks.
func BenchmarkQueryQ(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("cities=%d", n), func(b *testing.B) {
			s := genstore.Transport(rand.New(rand.NewSource(2)), n, n/10+1, 3)
			ev := trial.NewEvaluator(s)
			q := trial.QueryQ(genstore.RelE)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := ev.Eval(q)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = r.Len()
			}
		})
	}
}

// BenchmarkDatalogTranslate: Corollary 1 relies on the translation being
// linear-time; measure it on a nest of joins.
func BenchmarkDatalogTranslate(b *testing.B) {
	e := trial.QueryQ("E")
	for i := 0; i < 4; i++ {
		e = trial.Union{L: e, R: trial.QueryQ("E")}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := datalog.FromTriAL(e, []string{"E"})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = len(p.Rules)
	}
}

// BenchmarkDatalogEval: evaluating the Datalog translation of Q tracks the
// algebra's growth (Corollary 1).
func BenchmarkDatalogEval(b *testing.B) {
	prog, err := datalog.FromTriAL(trial.QueryQ(genstore.RelE), []string{genstore.RelE})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("cities=%d", n), func(b *testing.B) {
			s := genstore.Transport(rand.New(rand.NewSource(2)), n, n/10+1, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := prog.Evaluate(s)
				if err != nil {
					b.Fatal(err)
				}
				ans, err := res.Answers()
				if err != nil {
					b.Fatal(err)
				}
				benchSink = ans.Len()
			}
		})
	}
}

// BenchmarkMembership: Proposition 3's QueryEvaluation (one tuple).
func BenchmarkMembership(b *testing.B) {
	s := genstore.Random(rand.New(rand.NewSource(3)), 64, 512, 0)
	ev := trial.NewEvaluator(s)
	q := trial.ReachRight(genstore.RelE)
	tr := triplestore.Triple{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ev.Holds(q, tr)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			benchSink++
		}
	}
}

// BenchmarkGXPathTranslationEval: evaluating a translated GXPath query
// over the triplestore encoding (Theorem 7 route).
func BenchmarkGXPathTranslationEval(b *testing.B) {
	g := graph.New()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		g.AddEdge(fmt.Sprintf("n%d", rng.Intn(60)),
			string(rune('a'+rng.Intn(2))),
			fmt.Sprintf("n%d", rng.Intn(60)))
	}
	p := gxpath.Concat{
		L: gxpath.Star{P: gxpath.Label{A: "a"}},
		R: gxpath.Test{N: gxpath.Diamond{P: gxpath.Label{A: "b"}}},
	}
	e := translate.Path(p, graph.RelE)
	s := g.ToTriplestore()
	ev := trial.NewEvaluator(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ev.Eval(e)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r.Len()
	}
}

// BenchmarkParse: the expression parser on the paper's largest query.
func BenchmarkParse(b *testing.B) {
	src := trial.QueryQ("E").String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := trial.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = trial.Size(e)
	}
}

// --- Engine benchmarks -----------------------------------------------------
//
// The internal/engine execution engine against the reference Evaluator on
// the same workloads, so the speedup from permutation indexes, parallel
// probes and semi-naive delta stars is measured, not asserted. Each pair
// first cross-checks that both produce the same relation.

// benchBoth runs the evaluator configuration and the engine on the same
// query and store as paired sub-benchmarks.
func benchBoth(b *testing.B, s *triplestore.Store, q trial.Expr, ev *trial.Evaluator) {
	eng := engine.New(s)
	want, err := ev.Eval(q)
	if err != nil {
		b.Fatal(err)
	}
	got, err := eng.Eval(q)
	if err != nil {
		b.Fatal(err)
	}
	if !got.Equal(want) {
		b.Fatalf("engine result (%d triples) differs from evaluator (%d)", got.Len(), want.Len())
	}
	b.Run("evaluator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := ev.Eval(q)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = r.Len()
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := eng.Eval(q)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = r.Len()
		}
	})
}

// BenchmarkEngineJoin: the composition join on random stores — hash
// evaluator vs the engine's cost-chosen (index) join.
func BenchmarkEngineJoin(b *testing.B) {
	for _, size := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("T=%d", size), func(b *testing.B) {
			s := genstore.Random(rand.New(rand.NewSource(1)), size, size, 0)
			benchBoth(b, s, composeJoin(), trial.NewEvaluator(s))
		})
	}
}

// BenchmarkEngineStarChain: reachability on chains. The evaluator side is
// the generic Theorem 3 fixpoint (Proposition 5 specialization disabled),
// the engine side the semi-naive delta star probing the base's permutation
// index — the comparison the delta-star optimization is about.
func BenchmarkEngineStarChain(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			s := genstore.Chain(n, 1)
			ev := trial.NewEvaluator(s)
			ev.DisableReachStar = true
			benchBoth(b, s, trial.ReachRight(genstore.RelE), ev)
		})
	}
}

// BenchmarkEngineStarGrid: same comparison on grids, whose quadratic
// reachability sets stress the delta iteration.
func BenchmarkEngineStarGrid(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("grid=%dx%d", n, n), func(b *testing.B) {
			s := genstore.Grid(n, n)
			ev := trial.NewEvaluator(s)
			ev.DisableReachStar = true
			benchBoth(b, s, trial.SameLabelReach(genstore.RelE), ev)
		})
	}
}

// BenchmarkEngineQueryQ: the paper's running query end to end on synthetic
// transport networks, engine vs the tuned evaluator (reach specialization
// enabled) — the serving-path comparison.
func BenchmarkEngineQueryQ(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("cities=%d", n), func(b *testing.B) {
			s := genstore.Transport(rand.New(rand.NewSource(2)), n, n/10+1, 3)
			benchBoth(b, s, trial.QueryQ(genstore.RelE), trial.NewEvaluator(s))
		})
	}
}
