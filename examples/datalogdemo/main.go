// Datalogdemo: the §4 story. TriAL has a declarative twin — nonrecursive
// TripleDatalog¬ captures TriAL (Proposition 2) and ReachTripleDatalog¬
// captures TriAL* (Theorem 2). This example writes the paper's running
// query Q as a Datalog program, evaluates it, translates it to the
// algebra and back, and shows all routes agree.
package main

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/fixtures"
	"repro/internal/trial"
)

func main() {
	store := fixtures.Transport()

	// Q as a ReachTripleDatalog¬ program: Lift computes the inner star of
	// Example 4 (services lifted to their transitive companies), Reach the
	// outer same-company reachability.
	prog := datalog.MustParseProgram(`
		% services lifted through part_of chains
		Lift(?x, ?c, ?y)  :- E(?x, ?c, ?y).
		Lift(?x, ?c2, ?y) :- Lift(?x, ?c, ?y), E(?c, ?p, ?c2), ?p = part_of.

		% same-company reachability over lifted triples
		Reach(?x, ?c, ?y) :- Lift(?x, ?c, ?y).
		Reach(?x, ?c, ?z) :- Reach(?x, ?c, ?y), Lift(?y, ?c2, ?z), ?c = ?c2.

		@answer Reach.
	`)
	fmt.Print("Program:\n", prog)
	if err := prog.CheckReachShape(); err != nil {
		panic(err)
	}
	fmt.Println("\nthe program is in the ReachTripleDatalog¬ fragment of §4")

	res, err := prog.Evaluate(store)
	if err != nil {
		panic(err)
	}
	ans, err := res.Answers()
	if err != nil {
		panic(err)
	}
	report := func(from, to string) {
		found := false
		for _, t := range ans.Triples() {
			if store.Name(t[0]) == from && store.Name(t[2]) == to {
				found = true
			}
		}
		fmt.Printf("  (%s → %s): %v\n", from, to, found)
	}
	fmt.Println("\nDatalog answers:")
	report("St. Andrews", "London")
	report("St. Andrews", "Brussels")

	// Theorem 2, program → algebra: translate and cross-check.
	e, err := datalog.ToTriAL(prog)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ntranslated TriAL* expression:")
	fmt.Println(" ", e)
	ev := trial.NewEvaluator(store)
	r, err := ev.Eval(e)
	if err != nil {
		panic(err)
	}
	fmt.Printf("algebra evaluation agrees with the program: %v\n", r.Equal(ans))

	// Proposition 2 / Theorem 2, algebra → program: the paper's canonical
	// expression for Q round-trips too.
	q := trial.QueryQ(fixtures.RelE)
	prog2, err := datalog.FromTriAL(q, []string{fixtures.RelE})
	if err != nil {
		panic(err)
	}
	res2, err := prog2.Evaluate(store)
	if err != nil {
		panic(err)
	}
	ans2, err := res2.Answers()
	if err != nil {
		panic(err)
	}
	direct, err := ev.Eval(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nFromTriAL(Q) program (%d rules) agrees with direct evaluation: %v\n",
		len(prog2.Rules), ans2.Equal(direct))
}
