// Social: the §2.3 social-network model. Users and connections are all
// objects; the data-value function ρ maps each object to a quintuple
// (name, email, age, type, created) with nulls where a field does not
// apply. Queries mix navigation (θ conditions on object identity) with
// data comparisons (η conditions on ρ-values), which is exactly what the
// triplestore model adds over plain graphs.
package main

import (
	"fmt"

	"repro/internal/fixtures"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	store := fixtures.SocialNetwork()
	ev := trial.NewEvaluator(store)
	show := func(title string, e trial.Expr) {
		r, err := ev.Eval(e)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n  expr: %s\n", title, e)
		for _, t := range r.Triples() {
			fmt.Printf("  %s  ρ(mid) = %v\n", store.FormatTriple(t), store.Value(t[1]))
		}
		if r.Len() == 0 {
			fmt.Println("  (empty)")
		}
		fmt.Println()
	}

	// Connections typed "rival": select on component 3 of the middle
	// object's value tuple.
	rivalLit := triplestore.Value{
		triplestore.Null(), triplestore.Null(), triplestore.Null(),
		triplestore.F("rival"), triplestore.Null(),
	}
	show("Rival connections", trial.MustSelect(trial.R(fixtures.RelE), trial.Cond{
		Val: []trial.ValAtom{{L: trial.RhoP(trial.L2), R: trial.Lit(rivalLit), Component: 3}},
	}))

	// Two-hop acquaintances: compose connections.
	twoHop := trial.MustJoin(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(fixtures.RelE))
	show("Two-hop acquaintances (keeping the first connection)", twoHop)

	// Two-hop through connections created on the same date (component 4).
	sameDate := trial.MustJoin(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{
			Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))},
			Val: []trial.ValAtom{{L: trial.RhoP(trial.L2), R: trial.RhoP(trial.R2), Component: 4}},
		},
		trial.R(fixtures.RelE))
	show("Two-hop through same-day connections", sameDate)

	// Connections between users born the same… well, with equal ages
	// (component 2) — empty on this network.
	show("Connections between same-age users", trial.MustSelect(trial.R(fixtures.RelE), trial.Cond{
		Val: []trial.ValAtom{{L: trial.RhoP(trial.L1), R: trial.RhoP(trial.L3), Component: 2}},
	}))

	// The same queries can be written declaratively (§4). Here:
	// acquaintances through connections of the same type, in Datalog:
	fmt.Println("Datalog flavour (§4): see cmd/trialdatalog; e.g.")
	fmt.Println(`  Ans(?x, ?c, ?y) :- E(?x, ?c, ?z), E(?z, ?d, ?y), ~3(?c, ?d).`)
}
