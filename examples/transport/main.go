// Transport: the Proposition 1 / Theorem 1 story, end to end. Builds the
// two witness RDF documents D1 and D2 from the paper's appendix, shows
// that their graph encodings σ(D1) and σ(D2) are literally the same graph
// (so no nested regular expression over the encoding can distinguish
// them), and then runs the TriAL* query Q, which does distinguish them.
package main

import (
	"fmt"

	"repro/internal/fixtures"
	"repro/internal/nre"
	"repro/internal/rdf"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	d1Store, d2Store := fixtures.D1(), fixtures.D2()
	d1, err := rdf.FromStore(d1Store, fixtures.RelE)
	if err != nil {
		panic(err)
	}
	d2, err := rdf.FromStore(d2Store, fixtures.RelE)
	if err != nil {
		panic(err)
	}
	fmt.Printf("D1 has %d triples, D2 has %d (D2 = D1 minus (Edinburgh, Train Op 1, London))\n",
		d1.Len(), d2.Len())

	// The σ(·) encoding of Arenas & Pérez: (s,p,o) ↦ s -edge→ p -node→ o,
	// s -next→ o.
	s1, s2 := d1.Sigma(), d2.Sigma()
	fmt.Printf("σ(D1) = σ(D2): %v  (%d edges each)\n", s1.Equal(s2), s1.NumEdges())

	// Consequently every NRE gives the same answer over both encodings.
	probe := nre.Concat{
		L: nre.Label{A: rdf.LabelNext},
		R: nre.Star{E: nre.Label{A: rdf.LabelNext}},
	}
	a1 := nre.Eval(probe, nre.GraphStructure{G: s1})
	a2 := nre.Eval(probe, nre.GraphStructure{G: s2})
	fmt.Printf("sample NRE %s agrees on both: %v\n\n", probe, a1.Equal(a2))

	// But TriAL*, working on triples directly, distinguishes D1 and D2.
	q := trial.QueryQ(fixtures.RelE)
	inQ := func(s *triplestore.Store) bool {
		ev := trial.NewEvaluator(s)
		r, err := ev.Eval(q)
		if err != nil {
			panic(err)
		}
		found := false
		r.ForEach(func(t triplestore.Triple) {
			if s.Name(t[0]) == "St Andrews" && s.Name(t[2]) == "London" {
				found = true
			}
		})
		return found
	}
	fmt.Printf("(St Andrews, London) ∈ Q(D1): %v\n", inQ(d1Store))
	fmt.Printf("(St Andrews, London) ∈ Q(D2): %v\n", inQ(d2Store))
	fmt.Println("\nQ is a TriAL* query no NRE over σ(·) — and no nSPARQL query — can express.")
}
