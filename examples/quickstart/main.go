// Quickstart: build the Figure 1 transport triplestore, run Example 2's
// join, then the paper's running query Q ("pairs of cities connected by
// services operated by the same company") — the query the paper proves
// inexpressible in nSPARQL but easy in TriAL*.
package main

import (
	"fmt"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	// 1. Build the triplestore of Figure 1. A triplestore is a set of
	// (subject, predicate, object) triples; predicates are ordinary
	// objects and may appear as subjects of other triples (that is the
	// whole point of RDF and of TriAL).
	store := triplestore.NewStore()
	for _, t := range [][3]string{
		{"St. Andrews", "Bus Op 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
		{"Bus Op 1", "part_of", "NatExpress"},
		{"Train Op 1", "part_of", "EastCoast"},
		{"Train Op 2", "part_of", "Eurostar"},
		{"EastCoast", "part_of", "NatExpress"},
	} {
		store.Add("E", t[0], t[1], t[2])
	}
	ev := trial.NewEvaluator(store)

	// 2. Example 2: e = E ✶[1,3',3; 2=1'] E — replace each travel
	// service by the company operating it.
	e := trial.Example2("E")
	fmt.Println("Example 2:", e)
	result, err := ev.Eval(e)
	if err != nil {
		panic(err)
	}
	for _, t := range result.Triples() {
		fmt.Println("  ", store.FormatTriple(t))
	}

	// 3. Expressions can also be parsed from text (the CLI syntax).
	parsed := trial.MustParse("join[1,3',3; 2=1'](E, E)")
	r2, err := ev.Eval(parsed)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed form computes the same %d triples\n\n", r2.Len())

	// 4. The recursive query Q of §2.2: same-company reachability,
	// ((E ✶[1,3',3; 2=1'])* ✶[1,2,3'; 3=1',2=2'])*.
	q := trial.QueryQ("E")
	fmt.Println("Query Q:", q)
	qr, err := ev.Eval(q)
	if err != nil {
		panic(err)
	}
	pairs := map[[2]string]bool{}
	qr.ForEach(func(t triplestore.Triple) {
		pairs[[2]string{store.Name(t[0]), store.Name(t[2])}] = true
	})
	for _, check := range [][2]string{
		{"Edinburgh", "London"},
		{"St. Andrews", "London"},
		{"St. Andrews", "Brussels"},
	} {
		fmt.Printf("  (%s → %s) ∈ Q(D): %v\n", check[0], check[1], pairs[check])
	}
	fmt.Println("\n(St. Andrews → Brussels is absent: that trip changes companies,")
	fmt.Println(" from NatExpress to Eurostar — exactly the paper's point.)")
}
