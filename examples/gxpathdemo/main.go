// GXPath demo: evaluates GXPath path expressions — including complement
// and data tests, which plain RPQs lack — over a small graph database,
// then translates each expression into TriAL* (Theorem 7 / Corollary 4)
// and shows the two evaluation routes agree.
package main

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/gxpath"
	"repro/internal/translate"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func main() {
	// A little collaboration graph with data values.
	g := graph.New()
	g.AddEdge("ada", "knows", "bob")
	g.AddEdge("bob", "knows", "cho")
	g.AddEdge("cho", "knows", "ada")
	g.AddEdge("ada", "works_with", "cho")
	g.SetValue("ada", triplestore.V("london"))
	g.SetValue("bob", triplestore.V("paris"))
	g.SetValue("cho", triplestore.V("london"))

	queries := []struct {
		name string
		p    gxpath.Path
	}{
		{"knows", gxpath.Label{A: "knows"}},
		{"knows*", gxpath.Star{P: gxpath.Label{A: "knows"}}},
		{"no knows-edge (complement)", gxpath.Complement{P: gxpath.Label{A: "knows"}}},
		{"knows · [⟨works_with⟩]", gxpath.Concat{
			L: gxpath.Label{A: "knows"},
			R: gxpath.Test{N: gxpath.Diamond{P: gxpath.Label{A: "works_with"}}},
		}},
		{"(knows*)₌ same city", gxpath.DataCmp{P: gxpath.Star{P: gxpath.Label{A: "knows"}}}},
	}

	store := g.ToTriplestore()
	ev := trial.NewEvaluator(store)
	for _, q := range queries {
		direct := gxpath.EvalPath(q.p, g)
		expr := translate.Path(q.p, graph.RelE)
		r, err := ev.Eval(expr)
		if err != nil {
			panic(err)
		}
		viaTriAL := map[[2]string]bool{}
		r.ForEach(func(t triplestore.Triple) {
			viaTriAL[[2]string{store.Name(t[0]), store.Name(t[2])}] = true
		})
		fmt.Printf("%s\n  gxpath: %s\n", q.name, q.p)
		var pairs [][2]string
		for p := range direct {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, p := range pairs {
			fmt.Printf("  (%s, %s)\n", p[0], p[1])
		}
		agree := len(direct) == len(viaTriAL)
		for p := range viaTriAL {
			if !direct[p] {
				agree = false
			}
		}
		fmt.Printf("  TriAL* translation agrees: %v (size |e| = %d)\n\n", agree, trial.Size(expr))
	}
}
